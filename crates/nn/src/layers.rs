//! Forward implementations of the layer types used by tiny-ML models.
//!
//! All layers operate on HWC [`Tensor`]s. Implementations are direct
//! (no im2col/BLAS) — the workloads here are small crops and the planner
//! only needs shape/size semantics, but the numerics are exercised by the
//! quickstart inference path and the tests.

use rand::Rng;

use crate::tensor::Tensor;
use crate::{NnError, Result};

/// A feed-forward layer.
pub trait Layer: std::fmt::Debug {
    /// Layer name for reports.
    fn name(&self) -> &str;
    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for incompatible inputs.
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>>;
    /// Runs the layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for incompatible inputs.
    fn forward(&self, input: &Tensor) -> Result<Tensor>;
    /// Number of parameters (weights + biases).
    fn param_count(&self) -> usize;
}

fn expect_rank3(shape: &[usize]) -> Result<(usize, usize, usize)> {
    if shape.len() != 3 {
        return Err(NnError::ShapeMismatch {
            expected: "rank-3 [h, w, c]".into(),
            actual: format!("{shape:?}"),
        });
    }
    Ok((shape[0], shape[1], shape[2]))
}

/// Standard 2-D convolution (same-style zero padding optional).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    /// `[k, k, in, out]` weights.
    weights: Tensor,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with zero weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on zero kernel/stride/channels.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        ksize: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if in_ch == 0 || out_ch == 0 || ksize == 0 || stride == 0 {
            return Err(NnError::InvalidLayer {
                layer: "conv2d",
                reason: format!("in={in_ch} out={out_ch} k={ksize} stride={stride}"),
            });
        }
        Ok(Self {
            in_ch,
            out_ch,
            ksize,
            stride,
            pad,
            weights: Tensor::zeros(&[ksize, ksize, in_ch, out_ch]),
            bias: vec![0.0; out_ch],
        })
    }

    /// Randomises weights with He-style scaling.
    pub fn init_random<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        let fan_in = (self.ksize * self.ksize * self.in_ch) as f32;
        let scale = (2.0 / fan_in).sqrt();
        for w in self.weights.as_mut_slice() {
            *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
        }
        self
    }

    /// Sets one weight `[ky, kx, ci, co]` (tests and hand-built filters).
    pub fn set_weight(&mut self, ky: usize, kx: usize, ci: usize, co: usize, v: f32) {
        let k = self.ksize;
        let idx = ((ky * k + kx) * self.in_ch + ci) * self.out_ch + co;
        self.weights.as_mut_slice()[idx] = v;
    }

    fn weight(&self, ky: usize, kx: usize, ci: usize, co: usize) -> f32 {
        let k = self.ksize;
        self.weights.as_slice()[((ky * k + kx) * self.in_ch + ci) * self.out_ch + co]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (h, w, c) = expect_rank3(input)?;
        if c != self.in_ch {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} input channels", self.in_ch),
                actual: format!("{c}"),
            });
        }
        let oh = (h + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        let ow = (w + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        Ok(vec![oh, ow, self.out_ch])
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let out_shape = self.output_shape(input.shape())?;
        let (h, w, _) = expect_rank3(input.shape())?;
        let mut out = Tensor::zeros(&out_shape);
        let (oh, ow) = (out_shape[0], out_shape[1]);
        for oy in 0..oh {
            for ox in 0..ow {
                for co in 0..self.out_ch {
                    let mut acc = self.bias[co];
                    for ky in 0..self.ksize {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.ksize {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for ci in 0..self.in_ch {
                                acc += input.at(iy as usize, ix as usize, ci)
                                    * self.weight(ky, kx, ci, co);
                            }
                        }
                    }
                    out.set(oy, ox, co, acc);
                }
            }
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        self.ksize * self.ksize * self.in_ch * self.out_ch + self.out_ch
    }
}

/// Depthwise 2-D convolution (one filter per channel).
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    channels: usize,
    ksize: usize,
    stride: usize,
    pad: usize,
    /// `[k, k, c]` weights.
    weights: Tensor,
    bias: Vec<f32>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with zero weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on zero kernel/stride/channels.
    pub fn new(channels: usize, ksize: usize, stride: usize, pad: usize) -> Result<Self> {
        if channels == 0 || ksize == 0 || stride == 0 {
            return Err(NnError::InvalidLayer {
                layer: "depthwise_conv2d",
                reason: format!("c={channels} k={ksize} stride={stride}"),
            });
        }
        Ok(Self {
            channels,
            ksize,
            stride,
            pad,
            weights: Tensor::zeros(&[ksize, ksize, channels]),
            bias: vec![0.0; channels],
        })
    }

    /// Randomises weights.
    pub fn init_random<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        let scale = (2.0 / (self.ksize * self.ksize) as f32).sqrt();
        for w in self.weights.as_mut_slice() {
            *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
        }
        self
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> &str {
        "depthwise_conv2d"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (h, w, c) = expect_rank3(input)?;
        if c != self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} channels", self.channels),
                actual: format!("{c}"),
            });
        }
        let oh = (h + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        let ow = (w + 2 * self.pad).saturating_sub(self.ksize) / self.stride + 1;
        Ok(vec![oh, ow, c])
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let out_shape = self.output_shape(input.shape())?;
        let (h, w, _) = expect_rank3(input.shape())?;
        let mut out = Tensor::zeros(&out_shape);
        for oy in 0..out_shape[0] {
            for ox in 0..out_shape[1] {
                for c in 0..self.channels {
                    let mut acc = self.bias[c];
                    for ky in 0..self.ksize {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.ksize {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let widx = (ky * self.ksize + kx) * self.channels + c;
                            acc += input.at(iy as usize, ix as usize, c)
                                * self.weights.as_slice()[widx];
                        }
                    }
                    out.set(oy, ox, c, acc);
                }
            }
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        self.ksize * self.ksize * self.channels + self.channels
    }
}

/// 2-D average pooling.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    ksize: usize,
}

impl AvgPool2d {
    /// Creates a `k×k` average pool (stride = k).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on zero kernel.
    pub fn new(ksize: usize) -> Result<Self> {
        if ksize == 0 {
            return Err(NnError::InvalidLayer { layer: "avg_pool2d", reason: "k=0".into() });
        }
        Ok(Self { ksize })
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        "avg_pool2d"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (h, w, c) = expect_rank3(input)?;
        Ok(vec![(h / self.ksize).max(1), (w / self.ksize).max(1), c])
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Tensor::zeros(&out_shape);
        let norm = 1.0 / (self.ksize * self.ksize) as f32;
        for oy in 0..out_shape[0] {
            for ox in 0..out_shape[1] {
                for c in 0..out_shape[2] {
                    let mut acc = 0.0;
                    for ky in 0..self.ksize {
                        for kx in 0..self.ksize {
                            acc += input.at(oy * self.ksize + ky, ox * self.ksize + kx, c);
                        }
                    }
                    out.set(oy, ox, c, acc * norm);
                }
            }
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// Global average pooling to `[1, 1, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        "global_avg_pool"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (_, _, c) = expect_rank3(input)?;
        Ok(vec![1, 1, c])
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let (h, w, c) = expect_rank3(input.shape())?;
        let mut out = Tensor::zeros(&[1, 1, c]);
        let norm = 1.0 / (h * w) as f32;
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at(y, x, ch);
                }
            }
            out.set(0, 0, ch, acc * norm);
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// ReLU6 activation (`min(max(x, 0), 6)`, the MobileNet convention).
#[derive(Debug, Clone, Default)]
pub struct Relu6;

impl Layer for Relu6 {
    fn name(&self) -> &str {
        "relu6"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v = v.clamp(0.0, 6.0);
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        0
    }
}

/// Fully connected layer over a flattened input.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// `[in, out]` weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a zero-weight dense layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on zero dimensions.
    pub fn new(in_features: usize, out_features: usize) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidLayer {
                layer: "dense",
                reason: format!("in={in_features} out={out_features}"),
            });
        }
        Ok(Self {
            in_features,
            out_features,
            weights: vec![0.0; in_features * out_features],
            bias: vec![0.0; out_features],
        })
    }

    /// Randomises weights.
    pub fn init_random<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        let scale = (2.0 / self.in_features as f32).sqrt();
        for w in &mut self.weights {
            *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
        }
        self
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        "dense"
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        let numel: usize = input.iter().product();
        if numel != self.in_features {
            return Err(NnError::ShapeMismatch {
                expected: format!("{} features", self.in_features),
                actual: format!("{numel}"),
            });
        }
        Ok(vec![self.out_features])
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.output_shape(input.shape())?;
        let x = input.as_slice();
        let mut out = Tensor::zeros(&[self.out_features]);
        let o = out.as_mut_slice();
        for (j, oj) in o.iter_mut().enumerate() {
            let mut acc = self.bias[j];
            for (i, &xi) in x.iter().enumerate() {
                acc += xi * self.weights[i * self.out_features + j];
            }
            *oj = acc;
        }
        Ok(out)
    }

    fn param_count(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }
}

/// Numerically stable softmax over a rank-1 tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.as_slice().iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(logits.shape(), exps.into_iter().map(|e| e / sum).collect())
        .expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with weight 1 is the identity.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0).unwrap();
        conv.set_weight(0, 0, 0, 0, 1.0);
        let input = Tensor::from_vec(&[2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_box_filter() {
        // 2x2 conv of all-ones over constant input sums the window.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0).unwrap();
        for ky in 0..2 {
            for kx in 0..2 {
                conv.set_weight(ky, kx, 0, 0, 1.0);
            }
        }
        let input = Tensor::from_vec(&[3, 3, 1], vec![1.0; 9]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[2, 2, 1]);
        assert!(out.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn conv_stride_and_padding_shapes() {
        let conv = Conv2d::new(3, 8, 3, 2, 1).unwrap();
        assert_eq!(conv.output_shape(&[112, 112, 3]).unwrap(), vec![56, 56, 8]);
        let conv_same = Conv2d::new(8, 8, 3, 1, 1).unwrap();
        assert_eq!(conv_same.output_shape(&[56, 56, 8]).unwrap(), vec![56, 56, 8]);
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let conv = Conv2d::new(3, 8, 3, 1, 0).unwrap();
        let input = Tensor::zeros(&[8, 8, 4]);
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn conv_param_count() {
        let conv = Conv2d::new(3, 16, 3, 1, 1).unwrap();
        assert_eq!(conv.param_count(), 3 * 3 * 3 * 16 + 16);
    }

    #[test]
    fn depthwise_applies_per_channel() {
        let mut dw = DepthwiseConv2d::new(2, 1, 1, 0).unwrap();
        dw.weights.as_mut_slice()[0] = 2.0; // channel 0 doubled
        dw.weights.as_mut_slice()[1] = 3.0; // channel 1 tripled
        let input = Tensor::from_vec(&[1, 1, 2], vec![1.0, 1.0]).unwrap();
        let out = dw.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 3.0]);
        assert_eq!(dw.param_count(), 2 + 2);
    }

    #[test]
    fn avg_pool_halves() {
        let pool = AvgPool2d::new(2).unwrap();
        let input = Tensor::from_vec(&[2, 2, 1], vec![0.0, 2.0, 4.0, 6.0]).unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.as_slice()[0], 3.0);
    }

    #[test]
    fn global_avg_pool_means_channels() {
        let input =
            Tensor::from_vec(&[2, 2, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]).unwrap();
        let out = GlobalAvgPool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2]);
        assert!((out.as_slice()[0] - 2.5).abs() < 1e-6);
        assert!((out.as_slice()[1] - 25.0).abs() < 1e-6);
    }

    #[test]
    fn relu6_clamps() {
        let input = Tensor::from_vec(&[1, 1, 3], vec![-1.0, 3.0, 9.0]).unwrap();
        let out = Relu6.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn dense_matvec() {
        let mut dense = Dense::new(2, 2).unwrap();
        dense.weights = vec![1.0, 2.0, 3.0, 4.0]; // [in, out] layout
        dense.bias = vec![0.5, -0.5];
        let input = Tensor::from_vec(&[2], vec![1.0, 1.0]).unwrap();
        let out = dense.forward(&input).unwrap();
        // out_j = sum_i x_i * w[i][j] + b_j => [1+3+0.5, 2+4-0.5]
        assert_eq!(out.as_slice(), &[4.5, 5.5]);
        assert_eq!(dense.param_count(), 6);
    }

    #[test]
    fn dense_accepts_flattenable_input() {
        let dense = Dense::new(8, 4).unwrap();
        assert!(dense.output_shape(&[2, 2, 2]).is_ok());
        assert!(dense.output_shape(&[3, 3, 1]).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 3.0, 2.0]).unwrap();
        let p = softmax(&logits);
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(p.argmax(), 1);
        // Stability with large logits.
        let big = Tensor::from_vec(&[2], vec![1000.0, 1001.0]).unwrap();
        let pb = softmax(&big);
        assert!(pb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn random_init_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = Conv2d::new(3, 4, 3, 1, 1).unwrap().init_random(&mut r1);
        let b = Conv2d::new(3, 4, 3, 1, 1).unwrap().init_random(&mut r2);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn invalid_layer_params_rejected() {
        assert!(Conv2d::new(0, 1, 3, 1, 0).is_err());
        assert!(Conv2d::new(1, 1, 0, 1, 0).is_err());
        assert!(DepthwiseConv2d::new(1, 1, 0, 0).is_err());
        assert!(AvgPool2d::new(0).is_err());
        assert!(Dense::new(0, 5).is_err());
    }
}
