//! Criterion benchmarks of the arena memory planner, plus the ablation the
//! design document calls out: greedy arena planning vs a naive
//! no-reuse allocator (the peak-memory numbers themselves are printed so
//! the bench log doubles as the ablation table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise_nn::planner::{liveness_lower_bound, naive_peak, plan_greedy};
use hirise_nn::zoo;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_planner");
    for roi in [14usize, 56, 112] {
        let graph = zoo::mobilenet_v2_classifier(roi);
        let tensors = graph.tensor_lifetimes();
        group.bench_with_input(BenchmarkId::from_parameter(roi), &tensors, |b, tensors| {
            b.iter(|| plan_greedy(tensors));
        });
    }
    group.finish();
}

fn report_planner_ablation(_c: &mut Criterion) {
    // Not a timing benchmark: prints the greedy-vs-naive peak comparison
    // so `cargo bench` output records the ablation numbers.
    println!();
    println!("arena planner ablation (peak kB): model | greedy | naive no-reuse | lower bound");
    for (name, graph) in [
        ("mcunet_det_320x240", zoo::mcunet_v2_detector(320, 240)),
        ("mcunet_cls_112", zoo::mcunet_v2_classifier(112)),
        ("mobilenet_cls_112", zoo::mobilenet_v2_classifier(112)),
    ] {
        let tensors = graph.tensor_lifetimes();
        let greedy = plan_greedy(&tensors).peak_bytes as f64 / 1024.0;
        let naive = naive_peak(&tensors) as f64 / 1024.0;
        let bound = liveness_lower_bound(&tensors) as f64 / 1024.0;
        println!("  {name:24} | {greedy:8.1} | {naive:8.1} | {bound:8.1}");
    }
    println!();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_planner, report_planner_ablation
}
criterion_main!(benches);
