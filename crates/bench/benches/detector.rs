//! Criterion benchmarks of the stage-1 detector at the three Table-2
//! stage-1 resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise_bench::table2::detector_for;
use hirise_detect::Detector;
use hirise_imaging::{ops, Image};
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_detect(c: &mut Criterion) {
    let spec = DatasetSpec::dhdcampus_like();
    let generator = SceneGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let scene = generator.generate(1280, 960, &mut rng);
    let detector = Detector::new(detector_for(&spec));

    let mut group = c.benchmark_group("detector");
    group.sample_size(10);
    for k in [4u32, 2, 1] {
        let img = Image::Rgb(ops::avg_pool_rgb(&scene.image, k).expect("k tiles the scene"));
        let label = format!("{}x{}", img.width(), img.height());
        group.bench_with_input(BenchmarkId::from_parameter(label), &img, |b, img| {
            b.iter(|| detector.detect(img));
        });
    }
    group.finish();
}

fn bench_feature_maps(c: &mut Criterion) {
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(3);
    let scene = generator.generate(640, 480, &mut rng);
    let img = Image::Rgb(scene.image);
    c.bench_function("feature_maps_640x480", |b| {
        b.iter(|| hirise_detect::FeatureMaps::new(&img));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detect, bench_feature_maps
}
criterion_main!(benches);
