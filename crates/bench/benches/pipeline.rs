//! Criterion benchmarks of the end-to-end pipelines: HiRISE two-stage
//! (allocating vs scratch-reusing steady state) vs conventional full
//! readout, at a mid-size array.

use criterion::{criterion_group, criterion_main, Criterion};
use hirise::baseline::ConventionalPipeline;
use hirise::{HiriseConfig, HirisePipeline, PipelineScratch, SensorConfig};
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pipelines(c: &mut Criterion) {
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(77);
    let scene = generator.generate(640, 480, &mut rng).image;

    let config = HiriseConfig::builder(640, 480)
        .pooling(2)
        .max_rois(8)
        .build()
        .expect("valid configuration");
    let pipeline = HirisePipeline::new(config);
    let conventional = ConventionalPipeline::new(SensorConfig::default());

    let mut group = c.benchmark_group("end_to_end_640x480");
    group.sample_size(10);
    group.bench_function("hirise_two_stage", |b| {
        b.iter(|| pipeline.run(&scene).expect("pipeline succeeds"));
    });
    group.bench_function("hirise_two_stage_scratch", |b| {
        // The steady-state frame path: one warmed scratch, zero
        // per-frame heap allocations.
        let mut scratch = PipelineScratch::new();
        pipeline.run_with_scratch(&scene, &mut scratch).expect("warm-up succeeds");
        b.iter(|| pipeline.run_with_scratch(&scene, &mut scratch).expect("pipeline succeeds"));
    });
    group.bench_function("conventional_full_readout", |b| {
        b.iter(|| conventional.run(&scene));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines
}
criterion_main!(benches);
