//! Criterion benchmarks of the analog substrate: DC operating points and
//! transients of the Fig.-4 pooling circuit at increasing input counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise_analog::device::Stimulus;
use hirise_analog::pooling::PoolingCircuit;

fn bench_dc_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling_circuit_dc");
    for n in [2usize, 4, 12, 48] {
        let circuit = PoolingCircuit::builder(n).build().expect("valid circuit");
        let inputs: Vec<f64> = (0..n).map(|i| 0.3 + 0.6 * (i as f64 / n as f64)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| circuit.dc_average(&inputs).expect("solver converges"));
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling_circuit_transient");
    group.sample_size(10);
    for n in [2usize, 4] {
        let circuit = PoolingCircuit::builder(n).build().expect("valid circuit");
        let stimuli: Vec<Stimulus> = (0..n)
            .map(|i| Stimulus::Pwl(vec![(0.0, 0.4), (1e-6, 0.4 + 0.1 * i as f64), (2e-6, 0.5)]))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| circuit.transient(&stimuli, 20e-9, 2e-6).expect("solver converges"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dc_solve, bench_transient
}
criterion_main!(benches);
