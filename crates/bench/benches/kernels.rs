//! Criterion micro-benchmarks of the hottest frame-path kernels, so
//! per-kernel regressions are visible independently of the end-to-end
//! pipeline numbers: average pooling, luma conversion, gradient
//! magnitude, integral-image recompute, NMS, and the two normal-noise
//! samplers (sequential Box–Muller vs keyed Ziggurat — the PR 4 swap
//! behind the pool-stage speedup).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise_detect::{features, nms, Detection, IntegralImage};
use hirise_imaging::{color, ops, Plane, Rect, RgbImage};
use hirise_sensor::pooling::gaussian;
use rand::distributions::NormalSampler;
use rand::rngs::{KeyedRng, StdRng};
use rand::SeedableRng;

const W: u32 = 640;
const H: u32 = 480;

fn test_plane(w: u32, h: u32) -> Plane {
    Plane::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 251) as f32 / 251.0)
}

fn test_rgb(w: u32, h: u32) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        (
            ((x * 13 + y * 7) % 64) as f32 / 64.0,
            ((x * 5 + y * 11) % 64) as f32 / 64.0,
            ((x * 3 + y * 17) % 64) as f32 / 64.0,
        )
    })
}

fn bench_avg_pool(c: &mut Criterion) {
    let plane = test_plane(W, H);
    let mut group = c.benchmark_group("avg_pool_into_640x480");
    for k in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut out = Plane::new(W / k, H / k);
            b.iter(|| ops::avg_pool_into(black_box(&plane), k, &mut out).expect("k divides dims"));
        });
    }
    group.finish();
}

fn bench_luma(c: &mut Criterion) {
    let rgb = test_rgb(W, H);
    let mut out = Plane::new(W, H);
    c.bench_function("rgb_to_gray_mean_into_640x480", |b| {
        b.iter(|| color::weighted_gray_into(black_box(&rgb), color::MEAN_WEIGHTS, &mut out));
    });
}

fn bench_gradient(c: &mut Criterion) {
    let luma = test_plane(W, H);
    let mut out = Plane::new(W, H);
    c.bench_function("gradient_magnitude_into_640x480", |b| {
        b.iter(|| features::gradient_magnitude_into(black_box(&luma), &mut out));
    });
}

fn bench_integral(c: &mut Criterion) {
    let plane = test_plane(W, H);
    let mut ii = IntegralImage::new(&plane);
    c.bench_function("integral_recompute_640x480", |b| {
        b.iter(|| ii.recompute(black_box(&plane)));
    });
    c.bench_function("integral_recompute_squared_640x480", |b| {
        b.iter(|| ii.recompute_squared(black_box(&plane)));
    });
}

fn bench_nms(c: &mut Criterion) {
    // A dense overlapping grid, the detector's worst case: ~1000 boxes
    // with mixed scores and heavy mutual overlap.
    let mut dets = Vec::new();
    for i in 0..40u32 {
        for j in 0..25u32 {
            dets.push(Detection {
                class: 0,
                bbox: Rect::new(i * 6, j * 8, 24, 32),
                score: ((i * 7 + j * 13) % 101) as f32 / 101.0,
            });
        }
    }
    let mut scratch = nms::NmsScratch::new();
    let mut work = dets.clone();
    c.bench_function("nms_in_place_1000_boxes", |b| {
        b.iter(|| {
            work.clear();
            work.extend_from_slice(&dets);
            nms::nms_in_place(&mut work, 0.35, &mut scratch);
            black_box(work.len())
        });
    });
}

fn bench_noise_samplers(c: &mut Criterion) {
    // One frame's worth of pool-stage noise draws at 640×480 / k=2 RGB
    // (one pooling + one ADC draw per pooled site per channel).
    const DRAWS: usize = (W as usize / 2) * (H as usize / 2) * 3 * 2;
    c.bench_function("noise_box_muller_sequential_frame", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0f64;
            for _ in 0..DRAWS {
                acc += gaussian(&mut rng);
            }
            black_box(acc)
        });
    });
    c.bench_function("noise_ziggurat_keyed_frame", |b| {
        let sampler = NormalSampler::new();
        let key = KeyedRng::derive_key(1, 0);
        b.iter(|| {
            let mut acc = 0.0f64;
            for site in 0..DRAWS as u64 / 2 {
                // Per-site stream, two draws per site — the keyed pool
                // stage's exact access pattern.
                let mut rng = KeyedRng::for_stream(key, site);
                acc += sampler.sample(&mut rng);
                acc += sampler.sample(&mut rng);
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_avg_pool, bench_luma, bench_gradient, bench_integral, bench_nms,
        bench_noise_samplers
}
criterion_main!(benches);
