//! Criterion micro-benchmarks of the scaling paths: digital average
//! pooling (in-processor) vs behavioural analog pooling (in-sensor), plus
//! the ablation between ideal and noisy pooling configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise_imaging::{ops, RgbImage};
use hirise_sensor::{pooling, PixelArray, PixelParams, PoolingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scene(w: u32, h: u32) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        (
            ((x * 7 + y) % 32) as f32 / 32.0,
            ((x + y * 11) % 32) as f32 / 32.0,
            ((x * 3 + y * 5) % 32) as f32 / 32.0,
        )
    })
}

fn bench_digital_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("digital_avg_pool");
    for k in [2u32, 4, 8] {
        let img = scene(640, 480);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| ops::avg_pool_rgb(&img, k).expect("k tiles the image"));
        });
    }
    group.finish();
}

fn bench_analog_pooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analog_pool_gray");
    let img = scene(640, 480);
    let array = PixelArray::from_scene(&img, PixelParams::default(), 1);
    for k in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = PoolingConfig::default();
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| pooling::pool_gray(&array, k, &cfg, &mut rng).expect("k tiles the array"));
        });
    }
    group.finish();
}

fn bench_pooling_fidelity_ablation(c: &mut Criterion) {
    // Ablation: ideal vs calibrated-noisy pooling (run-time cost of the
    // noise model; the accuracy effect is covered by integration tests).
    let mut group = c.benchmark_group("pooling_fidelity");
    let img = scene(320, 240);
    let array = PixelArray::from_scene(&img, PixelParams::default(), 1);
    for (name, cfg) in [("ideal", PoolingConfig::ideal()), ("calibrated", PoolingConfig::default())]
    {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| pooling::pool_gray(&array, 4, &cfg, &mut rng).expect("k tiles the array"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_digital_pooling, bench_analog_pooling, bench_pooling_fidelity_ablation
}
criterion_main!(benches);
