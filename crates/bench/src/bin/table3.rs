//! Regenerates **Table 3**: the end-to-end system analysis across pixel
//! array sizes for MCUNetV2-like and MobileNetV2-like stage-2 models —
//! expression-recognition accuracy, peak SRAM, data transfer and energy,
//! baseline vs HiRISE.
//!
//! * ROI per array size: the CrowdHuman-like head median (≈4.375 % of the
//!   array width, 14×14 at 320×240 up to 112×112 at 2560×1920), j = 16.
//! * Accuracy: a real classifier (MLP from `hirise-nn`) trained per ROI
//!   size on RAF-DB-like synthetic expression patches rendered at 112 px
//!   and downscaled to the ROI, 8-bit quantised — reproducing the
//!   resolution/accuracy saturation curve. Inputs larger than 64 px are
//!   resized down (model input cap), where accuracy has saturated anyway.
//! * Stage-1 is always pooled to 320×240 RGB, as in the paper.
//!
//! Run: `cargo run --release -p hirise-bench --bin table3 [--quick|--full]`

use hirise_bench::args::RunSize;
use hirise_energy::{AdcEnergy, PoolingEnergy, SystemParams};
use hirise_imaging::{color, ops};
use hirise_nn::train::TrainConfig;
use hirise_nn::{zoo, Mlp};
use hirise_scene::{Expression, FacePatchGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KB: f64 = 1024.0;
/// Model input cap: ROIs larger than this are resized down before the
/// classifier (both reference models resize their inputs too; accuracy has
/// saturated well before this size, as in the paper's 1600→2560 rows).
const INPUT_CAP: u32 = 32;

/// Renders a labelled expression dataset at one ROI size, 8-bit quantised
/// grayscale, flattened for the MLP.
///
/// Difficulty knobs mirror deployment reality: the stage-1 detector does
/// not centre heads perfectly (random crop misalignment), illumination
/// varies (brightness/contrast jitter), and everything is quantised by the
/// 8-bit ADC. Misalignment hurts disproportionately at small ROI sizes,
/// which is exactly the Table-3 mechanism.
fn expression_dataset(roi: u32, per_class: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
    use rand::Rng;
    let generator = FacePatchGenerator::new(112);
    let mut rng = StdRng::seed_from_u64(seed);
    let side = roi.clamp(4, INPUT_CAP);
    let mut out = Vec::with_capacity(per_class * Expression::ALL.len());
    for _ in 0..per_class {
        for expr in Expression::ALL {
            let patch = generator.generate(expr, &mut rng);
            let gray = color::rgb_to_gray_mean(&patch);
            // Detector misalignment: crop 88–100 % of the patch at a random
            // offset before the optical downscale.
            let frac: f32 = rng.gen_range(0.88..1.0);
            let cw = ((112.0 * frac) as u32).clamp(8, 112);
            let cx = rng.gen_range(0..=(112 - cw));
            let cy = rng.gen_range(0..=(112 - cw));
            let cropped = gray
                .crop(hirise_imaging::Rect::new(cx, cy, cw, cw))
                .expect("crop stays inside the patch");
            // Optical size at this array: downscale to the ROI, then to the
            // model input size.
            let at_roi = ops::resize_gray(&cropped, roi.max(4), roi.max(4)).expect("nonzero roi");
            let input = ops::resize_gray(&at_roi, side, side).expect("nonzero side");
            // Illumination jitter + 8-bit ADC quantisation, centred for SGD.
            let gain: f32 = rng.gen_range(0.9..1.1);
            let offset: f32 = rng.gen_range(-0.05..0.05);
            let features: Vec<f32> = input
                .plane()
                .as_slice()
                .iter()
                .map(|&v| {
                    let lit = (v * gain + offset).clamp(0.0, 1.0);
                    (lit * 255.0).round() / 255.0 - 0.5
                })
                .collect();
            out.push((features, expr.id()));
        }
    }
    out
}

/// Trains and evaluates one stage-2 classifier; returns mean accuracy over
/// `repeats` independent train/test draws (paired across ROI sizes by the
/// shared base seed).
fn accuracy_at(roi: u32, hidden: usize, train_pc: usize, test_pc: usize, seed: u64) -> f64 {
    let repeats = 3;
    let mut total = 0.0;
    for rep in 0..repeats {
        let rep_seed = seed.wrapping_add(rep as u64 * 0x9E37);
        let train = expression_dataset(roi, train_pc, rep_seed);
        let test = expression_dataset(roi, test_pc, rep_seed ^ 0xDEAD);
        let features = train[0].0.len();
        let mut rng = StdRng::seed_from_u64(rep_seed ^ 0xBEEF);
        let mut mlp = Mlp::new(features, hidden, Expression::ALL.len(), &mut rng)
            .expect("dimensions are valid");
        // Learning rate scaled inversely with input dimensionality so SGD
        // is stable from 196-feature (14 px) up to 1024-feature inputs.
        let cfg = TrainConfig {
            epochs: 25,
            learning_rate: (6.0 / features as f32).min(0.05),
            weight_decay: 1e-4,
        };
        mlp.train(&train, &cfg, &mut rng).expect("training data is well-formed");
        total += mlp.accuracy(&test).expect("test data is well-formed");
    }
    total / repeats as f64
}

fn main() {
    let size = RunSize::from_env();
    let arrays: Vec<(u64, u64)> = match size {
        RunSize::Quick => vec![(320, 240), (960, 720), (2560, 1920)],
        _ => vec![
            (320, 240),
            (640, 480),
            (960, 720),
            (1280, 960),
            (1600, 1200),
            (1920, 1440),
            (2240, 1680),
            (2560, 1920),
        ],
    };
    let train_pc = size.pick(20, 40, 60);
    let test_pc = size.pick(10, 20, 30);

    let adc = AdcEnergy::PAPER_45NM_8BIT;
    let pooling = PoolingEnergy::PAPER_45NM;
    let stage1_kb = 320.0 * 240.0 * 3.0 / KB; // RGB stage-1 image

    println!("Table 3 — end-to-end system, stage-1 pooled to 320x240 RGB, j = 16 head ROIs");
    println!(
        "{:<14} {:>11} {:>8} {:>6} | {:>9} {:>10} {:>10} | {:>9} {:>9} | {:>8} {:>8}",
        "model",
        "array",
        "roi",
        "acc%",
        "peakAct",
        "SRAM base",
        "SRAM hirise",
        "DT base",
        "DT hirise",
        "E base",
        "E hirise"
    );

    for (model_name, hidden) in [("MCUNetV2", 32usize), ("MobileNetV2", 96)] {
        for &(n, m) in &arrays {
            let roi = ((n as f64 * 0.04375).round() as u32).max(4);
            // One shared seed: every array size sees the same underlying
            // faces, so rows differ only by resolution (paired design).
            let acc = accuracy_at(roi, hidden, train_pc, test_pc, 0x7AB3);

            let graph = match model_name {
                "MCUNetV2" => zoo::mcunet_v2_classifier(roi as usize),
                _ => zoo::mobilenet_v2_classifier(roi as usize),
            };
            let peak_kb = graph.peak_activation_bytes() as f64 / KB;
            let image_base_kb = (n * m * 3) as f64 / KB;
            let sram_base = image_base_kb + peak_kb;
            let sram_hirise = stage1_kb + peak_kb;

            // Transfer / energy: stage-1 at the pooling factor reaching
            // 320x240, 16 disjoint head ROIs.
            let k = n / 320;
            let roi_area = roi as u64 * roi as u64;
            let params =
                SystemParams::paper_default(n, m, k).with_rois(16, 16 * roi_area, 16 * roi_area);
            let base = params.conventional();
            let hirise = params.hirise_total();
            println!(
                "{:<14} {:>6}x{:<4} {:>4}x{:<3} {:>5.1} | {:>8.1}k {:>9.0}k {:>10.1}k | {:>8.0}k {:>8.0}k | {:>7.3} {:>7.3}",
                model_name,
                n,
                m,
                roi,
                roi,
                100.0 * acc,
                peak_kb,
                sram_base,
                sram_hirise,
                base.total_transfer_kb(),
                hirise.total_transfer_kb(),
                base.sensor_energy_mj(&adc, &pooling),
                hirise.sensor_energy_mj(&adc, &pooling)
            );
        }
        println!();
    }

    println!("paper reference at 2560x1920 (MCUNetV2): 81.2 % acc, 398 kB vs 14,913 kB SRAM (37.5x), 833 kB vs 14,746 kB transfer, 0.104 vs 1.843 mJ (17.7x)");
    println!("expected shape: accuracy rises with ROI size and saturates; the wider model wins at every size; SRAM/energy reductions grow with the array");
}
