//! Regenerates **Table 2**: mAP of in-processor vs in-sensor scaling on
//! the three dataset presets across resolutions and colour modes.
//!
//! Run: `cargo run --release -p hirise-bench --bin table2 [--quick|--full]`
//!
//! Expected shape (paper): the two paths match within fractions of a
//! point in every cell; accuracy rises with resolution (most strongly for
//! the VisDrone-like preset); gray trails RGB by a small gap.

use hirise_bench::args::RunSize;
use hirise_bench::table2::{format_table, run_dataset, Table2Config};
use hirise_scene::DatasetSpec;

fn main() {
    let size = RunSize::from_env();
    let mut config = match size {
        RunSize::Quick => Table2Config::quick(),
        RunSize::Standard => Table2Config::standard(),
        RunSize::Full => {
            let mut c = Table2Config::standard();
            c.eval_images = 16;
            c.cal_images = 6;
            c
        }
    };
    // Keep the VisDrone-like sweep tractable on small machines.
    if matches!(size, RunSize::Quick) {
        config.ks = vec![4, 2];
    }

    println!(
        "Table 2 run: array {}x{}, k = {:?}, {} cal + {} eval images per dataset",
        config.array.0, config.array.1, config.ks, config.cal_images, config.eval_images
    );

    let mut rows = Vec::new();
    for spec in DatasetSpec::paper_presets() {
        let row = run_dataset(&spec, &config, |line| println!("  {line}"));
        rows.push(row);
    }

    println!();
    println!("{}", format_table(&rows, config.array, &config.ks));
    println!("paper reference (2560x1920): Crowdhuman 55/71/79 %, DHDCampus 50/68/81 %, VisDrone 19/37/51 % (RGB, rising resolution)");

    // Shape checks, reported not asserted (binaries print; tests assert).
    for row in &rows {
        let mut parity_worst = 0.0f64;
        for c in &row.cells {
            parity_worst = parity_worst.max((c.map_in_processor - c.map_in_sensor).abs());
        }
        println!(
            "[check] {}: worst in-proc vs in-sensor gap = {:.2} pp",
            row.dataset,
            100.0 * parity_worst
        );
    }
}
