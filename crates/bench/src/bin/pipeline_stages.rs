//! Stage-breakdown benchmark of the steady-state frame path.
//!
//! Runs the HiRISE two-stage pipeline at 640×480 (k = 2, RGB stage 1,
//! default noisy sensor) through one warmed [`PipelineScratch`], collects
//! the per-stage [`StageTimings`] the profiler threads through every
//! [`hirise::RunReport`], and emits `results/BENCH_pipeline.json` so the
//! perf trajectory is tracked across PRs.
//!
//! Run: `cargo run --release -p hirise-bench --bin pipeline_stages [--quick]`

use std::time::{Duration, Instant};

use hirise::{HiriseConfig, HirisePipeline, PipelineScratch, StageTimings};
use hirise_bench::args::RunSize;
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WIDTH: u32 = 640;
const HEIGHT: u32 = 480;
const POOLING_K: u32 = 2;

struct Sample {
    total: Duration,
    stages: StageTimings,
}

fn main() {
    let size = RunSize::from_env();
    let frames = size.pick(5, 30, 100);
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(77);
    let scene = generator.generate(WIDTH, HEIGHT, &mut rng).image;

    let config = HiriseConfig::builder(WIDTH, HEIGHT)
        .pooling(POOLING_K)
        .max_rois(8)
        .build()
        .expect("valid configuration");
    let pipeline = HirisePipeline::new(config);
    let mut scratch = PipelineScratch::new();

    // Warm-up: buffers grow to their steady-state sizes.
    for _ in 0..2 {
        pipeline.run_with_scratch(&scene, &mut scratch).expect("warm-up succeeds");
    }

    let mut samples = Vec::with_capacity(frames);
    for _ in 0..frames {
        let start = Instant::now();
        let report = pipeline.run_with_scratch(&scene, &mut scratch).expect("frame succeeds");
        samples.push(Sample { total: start.elapsed(), stages: report.timings });
    }

    let n = samples.len() as f64;
    let mean_ms = |f: &dyn Fn(&Sample) -> Duration| {
        samples.iter().map(|s| f(s).as_secs_f64()).sum::<f64>() / n * 1e3
    };
    let min_total_ms =
        samples.iter().map(|s| s.total.as_secs_f64()).fold(f64::INFINITY, f64::min) * 1e3;
    let total = mean_ms(&|s: &Sample| s.total);
    let capture = mean_ms(&|s: &Sample| s.stages.capture);
    let pool = mean_ms(&|s: &Sample| s.stages.pool);
    let detect = mean_ms(&|s: &Sample| s.stages.detect);
    let roi_read = mean_ms(&|s: &Sample| s.stages.roi_read);

    println!("stage breakdown over {frames} frames at {WIDTH}x{HEIGHT}, k={POOLING_K}:");
    println!("  capture   {capture:8.2} ms  ({:5.1} %)", 100.0 * capture / total);
    println!("  pool      {pool:8.2} ms  ({:5.1} %)", 100.0 * pool / total);
    println!("  detect    {detect:8.2} ms  ({:5.1} %)", 100.0 * detect / total);
    println!("  roi-read  {roi_read:8.2} ms  ({:5.1} %)", 100.0 * roi_read / total);
    println!(
        "  end-to-end {total:7.2} ms/frame mean (min {min_total_ms:.2} ms, {:.1} fps)",
        1e3 / total
    );

    let json = format!(
        "{{\n  \"bench\": \"pipeline_stages\",\n  \"array\": \"{WIDTH}x{HEIGHT}\",\n  \
         \"pooling_k\": {POOLING_K},\n  \"frames\": {frames},\n  \
         \"end_to_end_ms_mean\": {total:.3},\n  \"end_to_end_ms_min\": {min_total_ms:.3},\n  \
         \"fps_mean\": {:.2},\n  \"stages_ms_mean\": {{\n    \"capture\": {capture:.3},\n    \
         \"pool\": {pool:.3},\n    \"detect\": {detect:.3},\n    \"roi_read\": {roi_read:.3}\n  }}\n}}\n",
        1e3 / total
    );
    let path = std::path::Path::new("results/BENCH_pipeline.json");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, json).expect("results/BENCH_pipeline.json is writable");
    println!("wrote {}", path.display());
}
