//! Stage-breakdown benchmark of the steady-state frame path.
//!
//! Runs the HiRISE two-stage pipeline through one warmed
//! [`hirise::PipelineScratch`], collects the per-stage
//! [`hirise::StageTimings`] the profiler threads through every
//! [`hirise::RunReport`], and emits `results/BENCH_pipeline.json` so the
//! perf trajectory is tracked across PRs (see the `bench_compare` binary
//! for the trajectory gate).
//!
//! ```text
//! cargo run --release -p hirise-bench --bin pipeline_stages -- \
//!     [--width 640] [--height 480] [--k 2] [--frames 30] \
//!     [--mode keyed|sequential] [--out results/BENCH_pipeline.json] \
//!     [--quick | --full]
//! ```
//!
//! `--frames` overrides the `--quick`/`--full` frame budget; `--mode`
//! selects the sensor noise mode so Keyed and Sequential runs are
//! distinguishable in the emitted JSON (and therefore in the committed
//! trajectory).

use hirise::NoiseRngMode;
use hirise_bench::args::Flags;
use hirise_bench::stages::{measure, StageBenchConfig};

fn main() {
    let flags = Flags::from_env();
    let defaults = StageBenchConfig::default();
    let config = StageBenchConfig {
        width: flags.parsed("width").unwrap_or(defaults.width),
        height: flags.parsed("height").unwrap_or(defaults.height),
        pooling_k: flags.parsed("k").unwrap_or(defaults.pooling_k),
        frames: flags.parsed("frames").unwrap_or_else(|| flags.run_size().pick(5, 30, 100)),
        mode: flags.parsed::<NoiseRngMode>("mode").unwrap_or(defaults.mode),
    };

    let result = measure(&config);
    let total = result.end_to_end_ms_mean;
    println!(
        "stage breakdown over {} frames at {}x{}, k={}, mode={}:",
        config.frames, config.width, config.height, config.pooling_k, config.mode
    );
    for (label, ms) in [
        ("capture ", result.capture_ms),
        ("pool    ", result.pool_ms),
        ("detect  ", result.detect_ms),
        ("roi-read", result.roi_read_ms),
    ] {
        println!("  {label}  {ms:8.2} ms  ({:5.1} %)", 100.0 * ms / total);
    }
    println!(
        "  end-to-end {total:7.2} ms/frame mean (min {:.2} ms, {:.1} fps)",
        result.end_to_end_ms_min,
        result.fps_mean()
    );

    let path = flags.value_of("out").unwrap_or("results/BENCH_pipeline.json");
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, result.to_json()).expect("bench JSON is writable");
    println!("wrote {}", path.display());
}
