//! Regenerates **Fig. 7**: total data transfer vs pixel array size for
//! pooling levels 2/4/8 against the single-stage baseline, with the
//! D1 (pooled image) / D2 (ROI crops) breakdown.
//!
//! ROI statistics are *measured* on generated CrowdHuman-like scenes (the
//! paper reports the CrowdHuman medians as the largest transfer case).
//!
//! Run: `cargo run --release -p hirise-bench --bin fig7 [--quick]`

use hirise_bench::args::RunSize;
use hirise_bench::stats::DatasetRoiStats;
use hirise_energy::{ColorChannels, SystemParams};
use hirise_scene::{DatasetSpec, ObjectClass};

fn main() {
    let size = RunSize::from_env();
    let images = size.pick(8, 24, 48);
    let stats = DatasetRoiStats::measure(
        &DatasetSpec::crowdhuman_like(),
        Some(ObjectClass::Person),
        images,
        0xF167,
    );
    println!(
        "measured crowdhuman-like ROI stats over {images} scenes: j = {}, sum area = {:.1} % of frame, union = {:.1} %",
        stats.boxes,
        100.0 * stats.sum_area_frac,
        100.0 * stats.union_area_frac
    );
    println!("(paper back-solved: sum ≈ 27 %, union ≈ 9 %)");
    println!();

    let arrays: [(u64, u64); 5] =
        [(640, 480), (1280, 960), (1600, 1200), (1920, 1440), (2560, 1920)];
    println!(
        "{:>12} | {:>12} | {:>26} | {:>26} | {:>26}",
        "array",
        "baseline kB",
        "k=2: D1+D2 kB (red., D1%)",
        "k=4: D1+D2 kB (red., D1%)",
        "k=8: D1+D2 kB (red., D1%)"
    );
    for (n, m) in arrays {
        let (j, sum, union) = stats.at_array(n, m);
        let mut row = format!("{:>7}x{:<4} | {:>12.0}", n, m, (n * m * 3) as f64 / 1000.0);
        for k in [2u64, 4, 8] {
            let params = SystemParams {
                stage1_color: ColorChannels::Rgb,
                ..SystemParams::paper_default(n, m, k)
            }
            .with_rois(j, sum, union);
            let base = params.conventional().total_transfer_bits() as f64;
            let s1 = params.hirise_stage1();
            let s2 = params.hirise_stage2();
            let total = params.hirise_total().total_transfer_bits() as f64;
            let d1_kb = s1.transfer_bits_s2p as f64 / 8000.0;
            let d2_kb = s2.transfer_bits_s2p as f64 / 8000.0;
            row.push_str(&format!(
                " | {:>8.0}+{:<8.0} ({:>4.1}x, {:>4.1}%)",
                d1_kb,
                d2_kb,
                base / total,
                100.0 * s1.transfer_bits_s2p as f64 / total
            ));
        }
        println!("{row}");
    }
    println!();
    println!("paper shape: reductions ≈ 1.9x / 3.0x / 3.5x with D1 shares ≈ 48 % / 19 % / 5 %, at every array size");
}
