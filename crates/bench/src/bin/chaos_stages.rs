//! Chaos benchmark: recovery under a seeded fault plan.
//!
//! Runs the fleet of [`hirise_bench::chaos`] twice — fault-free and
//! with the plan's panic injected mid-stream into one session — and
//! emits `results/BENCH_chaos.json` with the recovery axes the
//! `bench_compare` chaos gate hard-fails on: `dropped`, the quarantine
//! and recovery counts, the worst recovery span in frames, availability,
//! and the blast-radius bit (every non-faulted session identical to the
//! fault-free run).
//!
//! ```text
//! cargo run --release -p hirise-bench --bin chaos_stages -- \
//!     [--sessions N] [--frames N] [--out results/BENCH_chaos.json] \
//!     [--quick | --full]
//! ```
//!
//! `--quick` shrinks the fleet and array for a CI smoke — point `--out`
//! somewhere disposable; only standard runs belong in `results/`.

use hirise_bench::args::{Flags, RunSize};
use hirise_bench::chaos::{measure, ChaosBenchConfig};

fn main() {
    let flags = Flags::from_env();
    let size = flags.run_size();
    let out = flags.value_of("out").unwrap_or("results/BENCH_chaos.json");

    let mut config = ChaosBenchConfig::default();
    match size {
        RunSize::Quick => {
            config.sessions = 4;
            config.frames_per_session = 8;
            config.width = 64;
            config.height = 48;
            config.panic_session = 1;
            config.panic_frame = 3;
        }
        RunSize::Standard => {}
        RunSize::Full => {
            config.sessions = 16;
            config.frames_per_session = 32;
        }
    }
    if let Some(sessions) = flags.parsed("sessions") {
        config.sessions = sessions;
        config.panic_session = config.panic_session.min(sessions as u64 - 1);
    }
    if let Some(frames) = flags.parsed("frames") {
        config.frames_per_session = frames;
        config.panic_frame = config.panic_frame.min(frames.saturating_sub(1));
    }

    println!(
        "chaos_stages: {} sessions of {} frames on {}x{} k={}, \
         panic into session {} frame {}",
        config.sessions,
        config.frames_per_session,
        config.width,
        config.height,
        config.pooling_k,
        config.panic_session,
        config.panic_frame
    );
    let result = measure(&config);
    println!(
        "  faulted run: {} frames in {:.1} ms, {} dropped, {} completed",
        result.frames, result.wall_ms, result.dropped, result.completed
    );
    println!(
        "  recovery: {} quarantined, {} recovered, worst {} frames \
         (budget {}), availability {:.4}",
        result.quarantined,
        result.recovered,
        result.max_recovery_frames,
        result.config.keyframe_interval,
        result.availability()
    );
    println!("  blast radius contained: {}", result.others_bit_identical);
    assert_eq!(result.dropped, 0, "the chaos run dropped admitted sessions");
    assert!(result.others_bit_identical, "a session fault perturbed the rest of the fleet");

    let path = std::path::Path::new(out);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, result.to_json()).expect("chaos JSON is writable");
    println!("wrote {}", path.display());
}
