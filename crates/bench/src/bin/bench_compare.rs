//! Perf-trajectory gate: measures the frame path fresh and diffs it
//! against the committed `results/BENCH_pipeline.json` baseline.
//!
//! The fresh run reuses the baseline's configuration (array size,
//! pooling factor, noise mode) so the comparison is apples-to-apples,
//! appends a dated entry to the `results/BENCH_history.json` trajectory,
//! and **exits nonzero when the end-to-end mean regressed by more than
//! the allowed percentage** (default 15 %) — the labelled CI gate.
//!
//! The gate also covers the **temporal** trajectory: when a committed
//! `results/BENCH_temporal.json` exists (see the `video_stages` binary),
//! tracked-mode video is re-measured against it with the same budget and
//! folded into the history entry.
//!
//! And the **scenario fleet**: every committed baseline under
//! `results/scenarios/` (see the `scenario_stages` binary) is
//! re-measured with its own configuration and gated on all three axes —
//! tracked latency (the shared `--max-regress-pct` budget), accuracy
//! (mean ROI IoU must not drop by more than `--max-iou-drop`), and
//! sensor energy (total mJ must not grow by more than
//! `--max-energy-regress-pct`).
//!
//! And the **serve layer**: when a committed `results/BENCH_serve.json`
//! exists (see the `serve_stages` binary), the multi-tenant fleet is
//! re-measured with the baseline's own configuration. Wall-clock axes
//! (fleet p99, sessions/core at the SLO) get a deliberately loose
//! budget (`--max-serve-regress-pct`, default 75 % — shared runners are
//! noisy); the deterministic axes are hard gates: any `dropped > 0`
//! or a served-frame count that differs from the baseline fails
//! outright.
//!
//! And the **chaos layer**: when a committed `results/BENCH_chaos.json`
//! exists (see the `chaos_stages` binary), the seeded fault plan is
//! replayed with the baseline's own configuration. Every chaos axis is
//! deterministic and gated hard — any fleet abort or drop, a blast
//! radius that leaks past the faulted session, an unrecovered
//! quarantine, or a fault schedule that no longer matches the baseline
//! fails outright; only the recovery span gets a (loose) budget,
//! `--max-recovery-frames`, defaulting to the baseline's keyframe
//! interval (the checkpoint cadence).
//!
//! And the **recovery layer**: when a committed
//! `results/BENCH_recover.json` exists (see the `recover_stages`
//! binary), the crash-recovery protocol is replayed with the baseline's
//! own configuration — kill, restore, replay, resume. The deterministic
//! axes are hard gates: any drop, a kill tick that moved off the
//! baseline's seeded schedule, a served-frame count that differs from
//! the baseline, or **any post-restore divergence** (`identical:
//! false`) fails outright; the replay MTTR is gated against
//! `--max-replay-frames`, defaulting to the baseline's one-interval
//! budget (`replay_budget_frames`).
//!
//! A baseline that exists but cannot be parsed (truncated, corrupt,
//! missing fields) is a **configuration error, not a regression**: the
//! gate prints one `bench_compare: error:` line and exits 2 without
//! measuring anything.
//!
//! ```text
//! cargo run --release -p hirise-bench --bin bench_compare -- \
//!     [--baseline results/BENCH_pipeline.json] \
//!     [--temporal-baseline results/BENCH_temporal.json] \
//!     [--scenario-dir results/scenarios] \
//!     [--serve-baseline results/BENCH_serve.json] \
//!     [--chaos-baseline results/BENCH_chaos.json] \
//!     [--recover-baseline results/BENCH_recover.json] \
//!     [--history results/BENCH_history.json] \
//!     [--max-regress-pct 15] [--max-iou-drop 0.05] \
//!     [--max-energy-regress-pct 10] [--max-serve-regress-pct 75] \
//!     [--max-recovery-frames N] [--max-replay-frames N] \
//!     [--frames N] [--mode keyed|sequential] \
//!     [--quick | --full]
//! ```

use std::time::{SystemTime, UNIX_EPOCH};

use hirise::NoiseRngMode;
use hirise_bench::args::Flags;
use hirise_bench::stages::{json_bool, json_f64, json_str, measure, StageBenchConfig};
use hirise_bench::{chaos, recover, scenario, serve, video};

/// A malformed baseline or an unwritable history file is a
/// configuration error, not a regression: print one diagnostic line and
/// exit 2 (regressions exit 1), never a panic with a backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("bench_compare: error: {msg}");
    std::process::exit(2)
}

/// Gregorian `(year, month, day)` for a Unix day number (days since
/// 1970-01-01), via Howard Hinnant's civil-from-days algorithm.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

/// Appends `entry` to the JSON array in `path`, creating the array when
/// the file is missing or empty.
fn append_history(path: &std::path::Path, entry: &str) {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| fail(format!("history directory is not writable: {e}")));
    }
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let updated = match text.rfind(']') {
        Some(close) if text.contains('[') => {
            let head = text[..close].trim_end();
            let empty = head.trim_end().ends_with('[');
            let sep = if empty { "\n" } else { ",\n" };
            format!("{head}{sep}{entry}\n]\n")
        }
        _ => format!("[\n{entry}\n]\n"),
    };
    std::fs::write(path, updated)
        .unwrap_or_else(|e| fail(format!("history file {} is not writable: {e}", path.display())));
}

fn main() {
    let flags = Flags::from_env();
    let baseline_path = flags.value_of("baseline").unwrap_or("results/BENCH_pipeline.json");
    let history_path = flags.value_of("history").unwrap_or("results/BENCH_history.json");
    let max_regress_pct: f64 = flags.parsed("max-regress-pct").unwrap_or(15.0);

    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| fail(format!("cannot read baseline {baseline_path}: {e}")));
    let base_mean = json_f64(&baseline, "end_to_end_ms_mean").unwrap_or_else(|| {
        fail(format!("baseline {baseline_path} lacks end_to_end_ms_mean (corrupt or truncated?)"))
    });
    let base_pool = json_f64(&baseline, "pool");
    let array = json_str(&baseline, "array").unwrap_or_else(|| "640x480".into());
    let (width, height) = array
        .split_once('x')
        .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
        .unwrap_or_else(|| fail(format!("baseline {baseline_path} array {array:?} is not WxH")));
    let defaults = StageBenchConfig::default();
    let config = StageBenchConfig {
        width,
        height,
        pooling_k: json_f64(&baseline, "pooling_k").map_or(defaults.pooling_k, |k| k as u32),
        frames: flags.parsed("frames").unwrap_or_else(|| flags.run_size().pick(5, 30, 100)),
        // `--mode` overrides the baseline's mode (to measure a mode
        // switch against the previous trajectory point); baselines from
        // before the mode field default to the legacy sequential stream.
        mode: flags.parsed::<NoiseRngMode>("mode").unwrap_or_else(|| {
            json_str(&baseline, "mode")
                .and_then(|m| m.parse().ok())
                .unwrap_or(NoiseRngMode::Sequential)
        }),
    };

    println!(
        "bench_compare: re-running {array} k={} mode={} over {} frames \
         (baseline {base_mean:.2} ms/frame)",
        config.pooling_k, config.mode, config.frames
    );
    let fresh = measure(&config);
    let delta_pct = 100.0 * (fresh.end_to_end_ms_mean - base_mean) / base_mean;
    println!(
        "  end-to-end {:.2} ms/frame vs baseline {base_mean:.2} ms/frame ({delta_pct:+.1} %)",
        fresh.end_to_end_ms_mean
    );
    if let Some(base_pool) = base_pool {
        println!("  pool stage {:.2} ms vs baseline {base_pool:.2} ms", fresh.pool_ms);
    }

    // Temporal (tracked-mode video) trajectory: measured against its own
    // committed baseline when one exists; skipped otherwise so the gate
    // still runs on checkouts from before the temporal pipeline.
    let temporal_baseline_path =
        flags.value_of("temporal-baseline").unwrap_or("results/BENCH_temporal.json");
    let tracked = match std::fs::read_to_string(temporal_baseline_path) {
        Err(e) => {
            println!("no temporal baseline at {temporal_baseline_path} ({e}); skipping");
            None
        }
        Ok(temporal_baseline) => {
            let tracked_base =
                json_f64(&temporal_baseline, "tracked_ms_mean").unwrap_or_else(|| {
                    fail(format!(
                        "temporal baseline {temporal_baseline_path} lacks tracked_ms_mean \
                         (corrupt or truncated?)"
                    ))
                });
            let defaults = video::VideoBenchConfig::default();
            // Reconstruct the measurement configuration from the
            // temporal baseline itself (array, k, cadence, noise mode),
            // exactly as the still gate does from its baseline, so the
            // comparison stays apples-to-apples. The frame count also
            // comes from the baseline: the keyframe fraction is part of
            // the tracked mean, so a shorter fresh run (e.g. 2
            // keyframes over 12 frames vs 6 over 48) would bias the
            // delta with no real regression. `--mode`/`--frames`
            // override deliberately.
            let video_array =
                json_str(&temporal_baseline, "array").unwrap_or_else(|| array.clone());
            let (video_width, video_height) = video_array
                .split_once('x')
                .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                .unwrap_or_else(|| {
                    fail(format!("temporal baseline array {video_array:?} is not WxH"))
                });
            let video_config = video::VideoBenchConfig {
                width: video_width,
                height: video_height,
                pooling_k: json_f64(&temporal_baseline, "pooling_k")
                    .map_or(defaults.pooling_k, |k| k as u32),
                frames: flags.parsed("frames").unwrap_or_else(|| {
                    json_f64(&temporal_baseline, "frames").map_or(defaults.frames, |v| v as u32)
                }),
                keyframe_interval: json_f64(&temporal_baseline, "keyframe_interval")
                    .map_or(defaults.keyframe_interval, |v| v as u32),
                mode: flags.parsed::<NoiseRngMode>("mode").unwrap_or_else(|| {
                    json_str(&temporal_baseline, "mode")
                        .and_then(|m| m.parse().ok())
                        .unwrap_or(defaults.mode)
                }),
            };
            // Tracked-only measurement: the per-frame-mode half of the
            // video bench is not gated here, so don't pay for it.
            let fresh_video = video::measure_tracked(&video_config);
            let tracked_delta_pct =
                100.0 * (fresh_video.tracked_ms_mean - tracked_base) / tracked_base;
            println!(
                "  tracked video {:.2} ms/frame vs baseline {tracked_base:.2} ms/frame \
                 ({tracked_delta_pct:+.1} %), mean ROI IoU {:.3}",
                fresh_video.tracked_ms_mean, fresh_video.mean_roi_iou
            );
            Some((fresh_video, tracked_base, tracked_delta_pct))
        }
    };

    // Scenario-fleet trajectory: one committed baseline per scenario,
    // each re-measured with its own configuration and gated on latency,
    // IoU, *and* energy. Missing directory => skipped (checkouts from
    // before the fleet), like the temporal gate.
    let scenario_dir =
        std::path::Path::new(flags.value_of("scenario-dir").unwrap_or("results/scenarios"));
    let max_iou_drop: f64 = flags.parsed("max-iou-drop").unwrap_or(0.05);
    let max_energy_pct: f64 = flags.parsed("max-energy-regress-pct").unwrap_or(10.0);
    let mut scenario_failures: Vec<String> = Vec::new();
    let mut scenarios_checked = 0u32;
    match std::fs::read_dir(scenario_dir) {
        Err(e) => {
            println!("no scenario baselines at {} ({e}); skipping", scenario_dir.display());
        }
        Ok(dir) => {
            let mut paths: Vec<_> = dir
                .filter_map(|entry| entry.ok().map(|entry| entry.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            paths.sort();
            for path in &paths {
                let base = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    fail(format!("cannot read scenario baseline {}: {e}", path.display()))
                });
                let miss = |field: &str| -> ! {
                    fail(format!(
                        "scenario baseline {} lacks {field} (corrupt or truncated?)",
                        path.display()
                    ))
                };
                let label = json_str(&base, "label").unwrap_or_else(|| miss("label"));
                let scenario_array = json_str(&base, "array").unwrap_or_else(|| miss("array"));
                let (scenario_w, scenario_h) = scenario_array
                    .split_once('x')
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                    .unwrap_or_else(|| {
                        fail(format!("scenario baseline array {scenario_array:?} is not WxH"))
                    });
                // The whole configuration comes from the baseline itself —
                // including the frame count, which `--frames` deliberately
                // does NOT override here: a different clip length changes
                // the keyframe fraction and with it all three gated
                // numbers.
                let config = scenario::ScenarioBenchConfig {
                    scenario: json_str(&base, "scenario").unwrap_or_else(|| miss("scenario")),
                    label: label.clone(),
                    width: scenario_w,
                    height: scenario_h,
                    pooling_k: json_f64(&base, "pooling_k").map_or(2, |v| v as u32),
                    frames: json_f64(&base, "frames").map_or(32, |v| v as u32),
                    keyframe_interval: json_f64(&base, "keyframe_interval").map_or(8, |v| v as u32),
                    max_rois: json_f64(&base, "max_rois").map_or(8, |v| v as usize),
                    mode: json_str(&base, "mode").and_then(|m| m.parse().ok()).unwrap_or_default(),
                    seed: json_f64(&base, "seed").map_or(scenario::SCENARIO_SEED, |v| v as u64),
                };
                let base_ms =
                    json_f64(&base, "tracked_ms_mean").unwrap_or_else(|| miss("tracked_ms_mean"));
                let base_iou =
                    json_f64(&base, "mean_roi_iou").unwrap_or_else(|| miss("mean_roi_iou"));
                let base_energy =
                    json_f64(&base, "energy_mj_total").unwrap_or_else(|| miss("energy_mj_total"));
                let fresh = scenario::measure_tracked(&config);
                let ms_pct = 100.0 * (fresh.tracked_ms_mean - base_ms) / base_ms;
                let iou_drop = base_iou - fresh.mean_roi_iou;
                let energy_pct = if base_energy > 0.0 {
                    100.0 * (fresh.energy_mj_total - base_energy) / base_energy
                } else {
                    0.0
                };
                println!(
                    "  scenario {label:>13}: {:.2} ms/frame ({ms_pct:+.1} %), \
                     IoU {:.3} ({:+.3} vs baseline), energy {:.3} mJ ({energy_pct:+.1} %)",
                    fresh.tracked_ms_mean, fresh.mean_roi_iou, -iou_drop, fresh.energy_mj_total
                );
                if ms_pct > max_regress_pct {
                    scenario_failures.push(format!(
                        "scenario {label}: tracked mean {ms_pct:+.1} % exceeds the allowed \
                         +{max_regress_pct:.1} %"
                    ));
                }
                if iou_drop > max_iou_drop {
                    scenario_failures.push(format!(
                        "scenario {label}: mean ROI IoU dropped {iou_drop:.3} \
                         (from {base_iou:.3} to {:.3}), more than the allowed {max_iou_drop:.3}",
                        fresh.mean_roi_iou
                    ));
                }
                if energy_pct > max_energy_pct {
                    scenario_failures.push(format!(
                        "scenario {label}: sensor energy {energy_pct:+.1} % exceeds the allowed \
                         +{max_energy_pct:.1} %"
                    ));
                }
                scenarios_checked += 1;
            }
        }
    }

    // Serve-layer trajectory: the multi-tenant fleet re-measured with
    // the committed baseline's own configuration. Missing file =>
    // skipped (checkouts from before the serve layer), like the
    // temporal gate. Timing axes are gated loosely; the deterministic
    // axes (no drops, exact served-frame count) are hard.
    let serve_baseline_path =
        flags.value_of("serve-baseline").unwrap_or("results/BENCH_serve.json");
    let max_serve_pct: f64 = flags.parsed("max-serve-regress-pct").unwrap_or(75.0);
    let mut serve_failures: Vec<String> = Vec::new();
    let serve_fresh = match std::fs::read_to_string(serve_baseline_path) {
        Err(e) => {
            println!("no serve baseline at {serve_baseline_path} ({e}); skipping");
            None
        }
        Ok(serve_baseline) => {
            let miss = |field: &str| -> ! {
                fail(format!(
                    "serve baseline {serve_baseline_path} lacks {field} (corrupt or truncated?)"
                ))
            };
            let serve_array = json_str(&serve_baseline, "array").unwrap_or_else(|| miss("array"));
            let (serve_w, serve_h) = serve_array
                .split_once('x')
                .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                .unwrap_or_else(|| {
                    fail(format!("serve baseline array {serve_array:?} is not WxH"))
                });
            let defaults = serve::ServeBenchConfig::default();
            // The whole configuration comes from the baseline itself —
            // including the session mix and seed: the fresh run must
            // replay the identical workload or the deterministic
            // frame-count gate below would be meaningless.
            let serve_config = serve::ServeBenchConfig {
                sessions: json_f64(&serve_baseline, "sessions")
                    .map_or(defaults.sessions, |v| v as usize),
                frames_per_session: json_f64(&serve_baseline, "frames_per_session")
                    .map_or(defaults.frames_per_session, |v| v as u32),
                width: serve_w,
                height: serve_h,
                pooling_k: json_f64(&serve_baseline, "pooling_k")
                    .map_or(defaults.pooling_k, |v| v as u32),
                keyframe_interval: json_f64(&serve_baseline, "keyframe_interval")
                    .map_or(defaults.keyframe_interval, |v| v as u32),
                rated_sessions: json_f64(&serve_baseline, "rated_sessions")
                    .map_or(defaults.rated_sessions, |v| v as usize),
                session_fps: json_f64(&serve_baseline, "session_fps")
                    .unwrap_or(defaults.session_fps),
                slo_ms: json_f64(&serve_baseline, "slo_ms").unwrap_or(defaults.slo_ms),
                seed: json_f64(&serve_baseline, "seed").map_or(defaults.seed, |v| v as u64),
            };
            let base_p99 = json_f64(&serve_baseline, "p99_ms").unwrap_or_else(|| miss("p99_ms"));
            let base_capacity = json_f64(&serve_baseline, "sessions_per_core_at_slo")
                .unwrap_or_else(|| miss("sessions_per_core_at_slo"));
            let base_frames =
                json_f64(&serve_baseline, "frames").unwrap_or_else(|| miss("frames")) as u64;
            let fresh_serve = serve::measure(&serve_config);
            let p99_pct = if base_p99 > 0.0 {
                100.0 * (fresh_serve.p99_ms - base_p99) / base_p99
            } else {
                0.0
            };
            let capacity = fresh_serve.sessions_per_core_at_slo();
            let capacity_drop_pct = if base_capacity > 0.0 {
                100.0 * (base_capacity - capacity) / base_capacity
            } else {
                0.0
            };
            println!(
                "  serve fleet: p99 {:.3} ms ({p99_pct:+.1} %), {capacity:.0} sessions/core \
                 ({:.0} baseline), {} frames, {} dropped, shed max {}",
                fresh_serve.p99_ms,
                base_capacity,
                fresh_serve.frames,
                fresh_serve.dropped,
                fresh_serve.max_shed_level
            );
            if fresh_serve.dropped > 0 {
                serve_failures.push(format!(
                    "serve: {} admitted sessions were dropped — the no-drop contract is broken",
                    fresh_serve.dropped
                ));
            }
            if fresh_serve.frames != base_frames {
                serve_failures.push(format!(
                    "serve: served {} frames but the baseline workload is {base_frames} — \
                     the seeded mix is no longer deterministic",
                    fresh_serve.frames
                ));
            }
            if p99_pct > max_serve_pct {
                serve_failures.push(format!(
                    "serve: fleet p99 {p99_pct:+.1} % exceeds the allowed +{max_serve_pct:.1} %"
                ));
            }
            if capacity_drop_pct > max_serve_pct {
                serve_failures.push(format!(
                    "serve: sessions/core at the SLO dropped {capacity_drop_pct:.1} % \
                     (from {base_capacity:.0} to {capacity:.0}), more than the allowed \
                     {max_serve_pct:.1} %"
                ));
            }
            Some(fresh_serve)
        }
    };

    // Chaos trajectory: the seeded fault plan replayed with the
    // committed baseline's own configuration. Missing file => skipped
    // (checkouts from before the chaos layer). Everything here is
    // deterministic, so every axis except the recovery-span budget is a
    // hard gate.
    let chaos_baseline_path =
        flags.value_of("chaos-baseline").unwrap_or("results/BENCH_chaos.json");
    let mut chaos_failures: Vec<String> = Vec::new();
    let chaos_fresh = match std::fs::read_to_string(chaos_baseline_path) {
        Err(e) => {
            println!("no chaos baseline at {chaos_baseline_path} ({e}); skipping");
            None
        }
        Ok(chaos_baseline) => {
            let miss = |field: &str| -> ! {
                fail(format!(
                    "chaos baseline {chaos_baseline_path} lacks {field} (corrupt or truncated?)"
                ))
            };
            let chaos_array = json_str(&chaos_baseline, "array").unwrap_or_else(|| miss("array"));
            let (chaos_w, chaos_h) = chaos_array
                .split_once('x')
                .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                .unwrap_or_else(|| {
                    fail(format!("chaos baseline array {chaos_array:?} is not WxH"))
                });
            let defaults = chaos::ChaosBenchConfig::default();
            // The whole configuration — fleet shape, fault coordinates,
            // seed — comes from the baseline itself: the gate replays
            // the identical fault plan or the schedule comparison below
            // would be meaningless.
            let chaos_config = chaos::ChaosBenchConfig {
                sessions: json_f64(&chaos_baseline, "sessions")
                    .map_or(defaults.sessions, |v| v as usize),
                frames_per_session: json_f64(&chaos_baseline, "frames_per_session")
                    .map_or(defaults.frames_per_session, |v| v as u32),
                width: chaos_w,
                height: chaos_h,
                pooling_k: json_f64(&chaos_baseline, "pooling_k")
                    .map_or(defaults.pooling_k, |v| v as u32),
                keyframe_interval: json_f64(&chaos_baseline, "keyframe_interval")
                    .map_or(defaults.keyframe_interval, |v| v as u32),
                panic_session: json_f64(&chaos_baseline, "panic_session")
                    .map_or(defaults.panic_session, |v| v as u64),
                panic_frame: json_f64(&chaos_baseline, "panic_frame")
                    .map_or(defaults.panic_frame, |v| v as u32),
                seed: json_f64(&chaos_baseline, "seed").map_or(defaults.seed, |v| v as u64),
            };
            // The recovery budget is loose by default: the baseline's
            // checkpoint cadence, overridable for tighter policies.
            let max_recovery_frames: u32 =
                flags.parsed("max-recovery-frames").unwrap_or(chaos_config.keyframe_interval);
            let base_frames =
                json_f64(&chaos_baseline, "frames").unwrap_or_else(|| miss("frames")) as u64;
            let base_quarantined = json_f64(&chaos_baseline, "quarantined")
                .unwrap_or_else(|| miss("quarantined")) as u64;
            let fresh_chaos = chaos::measure(&chaos_config);
            println!(
                "  chaos fleet: {} frames, {} dropped, {} quarantined, {} recovered, \
                 worst recovery {} frames (budget {max_recovery_frames}), \
                 availability {:.4}, blast radius contained: {}",
                fresh_chaos.frames,
                fresh_chaos.dropped,
                fresh_chaos.quarantined,
                fresh_chaos.recovered,
                fresh_chaos.max_recovery_frames,
                fresh_chaos.availability(),
                fresh_chaos.others_bit_identical
            );
            if fresh_chaos.dropped > 0 {
                chaos_failures.push(format!(
                    "chaos: {} admitted sessions were dropped — a fault became fleet-fatal",
                    fresh_chaos.dropped
                ));
            }
            if fresh_chaos.completed != chaos_config.sessions as u64 {
                chaos_failures.push(format!(
                    "chaos: only {} of {} sessions completed under the fault plan",
                    fresh_chaos.completed, chaos_config.sessions
                ));
            }
            if !fresh_chaos.others_bit_identical {
                chaos_failures.push(
                    "chaos: a session fault perturbed other sessions — the isolation \
                     boundary leaks"
                        .into(),
                );
            }
            if fresh_chaos.quarantined != base_quarantined {
                chaos_failures.push(format!(
                    "chaos: {} sessions quarantined but the baseline schedule says \
                     {base_quarantined} — the fault plan is no longer deterministic",
                    fresh_chaos.quarantined
                ));
            }
            if fresh_chaos.recovered != fresh_chaos.quarantined {
                chaos_failures.push(format!(
                    "chaos: {} of {} quarantined sessions recovered — checkpoint \
                     recovery is broken",
                    fresh_chaos.recovered, fresh_chaos.quarantined
                ));
            }
            if fresh_chaos.max_recovery_frames > max_recovery_frames {
                chaos_failures.push(format!(
                    "chaos: worst recovery took {} frames, over the allowed \
                     {max_recovery_frames}",
                    fresh_chaos.max_recovery_frames
                ));
            }
            if fresh_chaos.frames != base_frames {
                chaos_failures.push(format!(
                    "chaos: served {} frames but the baseline is {base_frames} — \
                     the faulted workload is no longer deterministic",
                    fresh_chaos.frames
                ));
            }
            if json_bool(&chaos_baseline, "others_bit_identical") == Some(false) {
                chaos_failures.push(
                    "chaos: the committed baseline itself records a leaking blast \
                     radius — regenerate it from a healthy build"
                        .into(),
                );
            }
            Some(fresh_chaos)
        }
    };

    // Recovery trajectory: the crash-recovery protocol replayed with
    // the committed baseline's own configuration — kill, restore,
    // replay, resume. Missing file => skipped (checkouts from before
    // the recovery layer). Wall-clock costs (snapshot/restore/replay
    // ms) are reported, not gated; the deterministic axes are hard, and
    // the replay MTTR rides a one-snapshot-interval frame budget.
    let recover_baseline_path =
        flags.value_of("recover-baseline").unwrap_or("results/BENCH_recover.json");
    let mut recover_failures: Vec<String> = Vec::new();
    let recover_fresh = match std::fs::read_to_string(recover_baseline_path) {
        Err(e) => {
            println!("no recovery baseline at {recover_baseline_path} ({e}); skipping");
            None
        }
        Ok(recover_baseline) => {
            let miss = |field: &str| -> ! {
                fail(format!(
                    "recovery baseline {recover_baseline_path} lacks {field} \
                     (corrupt or truncated?)"
                ))
            };
            let recover_array =
                json_str(&recover_baseline, "array").unwrap_or_else(|| miss("array"));
            let (recover_w, recover_h) = recover_array
                .split_once('x')
                .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                .unwrap_or_else(|| {
                    fail(format!("recovery baseline array {recover_array:?} is not WxH"))
                });
            let defaults = recover::RecoverBenchConfig::default();
            // The whole configuration — fleet shape, snapshot cadence,
            // crash seed — comes from the baseline itself: the gate
            // replays the identical kill schedule or the crash-tick
            // comparison below would be meaningless.
            let recover_config = recover::RecoverBenchConfig {
                sessions: json_f64(&recover_baseline, "sessions")
                    .map_or(defaults.sessions, |v| v as usize),
                frames_per_session: json_f64(&recover_baseline, "frames_per_session")
                    .map_or(defaults.frames_per_session, |v| v as u32),
                width: recover_w,
                height: recover_h,
                pooling_k: json_f64(&recover_baseline, "pooling_k")
                    .map_or(defaults.pooling_k, |v| v as u32),
                keyframe_interval: json_f64(&recover_baseline, "keyframe_interval")
                    .map_or(defaults.keyframe_interval, |v| v as u32),
                snapshot_every: json_f64(&recover_baseline, "snapshot_every")
                    .map_or(defaults.snapshot_every, |v| v as u64),
                crash_rate: json_f64(&recover_baseline, "crash_rate")
                    .unwrap_or(defaults.crash_rate),
                seed: json_f64(&recover_baseline, "seed").map_or(defaults.seed, |v| v as u64),
            };
            // The replay budget defaults to the baseline's own
            // one-snapshot-interval bound, overridable for tighter
            // policies.
            let base_budget = json_f64(&recover_baseline, "replay_budget_frames")
                .unwrap_or_else(|| miss("replay_budget_frames"))
                as u64;
            let max_replay_frames: u64 = flags.parsed("max-replay-frames").unwrap_or(base_budget);
            let base_frames =
                json_f64(&recover_baseline, "frames").unwrap_or_else(|| miss("frames")) as u64;
            let base_crash_tick = json_f64(&recover_baseline, "crash_tick")
                .unwrap_or_else(|| miss("crash_tick")) as u64;
            let fresh_recover = recover::measure(&recover_config);
            println!(
                "  recovery: killed at tick {} of {}, snapshot {} B, restored in {:.3} ms, \
                 replay MTTR {} frames (budget {max_replay_frames}) in {:.3} ms, \
                 {} frames, {} dropped, bit-identical: {}",
                fresh_recover.crash_tick,
                fresh_recover.total_ticks,
                fresh_recover.snapshot_bytes,
                fresh_recover.restore_ms,
                fresh_recover.replay_frames,
                fresh_recover.replay_ms,
                fresh_recover.frames,
                fresh_recover.dropped,
                fresh_recover.identical
            );
            if fresh_recover.dropped > 0 {
                recover_failures.push(format!(
                    "recovery: {} admitted sessions were dropped — a crash became \
                     session-fatal",
                    fresh_recover.dropped
                ));
            }
            if !fresh_recover.identical {
                recover_failures.push(
                    "recovery: the restored run diverged from the uninterrupted twin — \
                     the crash-consistency contract is broken"
                        .into(),
                );
            }
            if fresh_recover.crash_tick != base_crash_tick {
                recover_failures.push(format!(
                    "recovery: the seeded kill landed at tick {} but the baseline \
                     schedule says {base_crash_tick} — the crash plan is no longer \
                     deterministic",
                    fresh_recover.crash_tick
                ));
            }
            if fresh_recover.frames != base_frames {
                recover_failures.push(format!(
                    "recovery: served {} frames but the baseline is {base_frames} — \
                     the recovered workload is no longer deterministic",
                    fresh_recover.frames
                ));
            }
            if fresh_recover.replay_frames > max_replay_frames {
                recover_failures.push(format!(
                    "recovery: replay MTTR {} frames exceeds the allowed \
                     {max_replay_frames} (one snapshot interval)",
                    fresh_recover.replay_frames
                ));
            }
            if json_bool(&recover_baseline, "identical") == Some(false) {
                recover_failures.push(
                    "recovery: the committed baseline itself records a post-restore \
                     divergence — regenerate it from a healthy build"
                        .into(),
                );
            }
            Some(fresh_recover)
        }
    };

    let epoch_secs = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((epoch_secs / 86_400) as i64);
    let tracked_fields = tracked.as_ref().map_or_else(String::new, |(v, base, delta)| {
        format!(
            ", \"tracked_ms_mean\": {:.3}, \"tracked_baseline_ms_mean\": {base:.3}, \
             \"tracked_delta_pct\": {delta:.2}, \"mean_roi_iou\": {:.4}",
            v.tracked_ms_mean, v.mean_roi_iou,
        )
    });
    let scenario_fields = if scenarios_checked == 0 {
        String::new()
    } else {
        format!(
            ", \"scenarios_checked\": {scenarios_checked}, \"scenario_failures\": {}",
            scenario_failures.len()
        )
    };
    let serve_fields = serve_fresh.as_ref().map_or_else(String::new, |s| {
        format!(
            ", \"serve_p99_ms\": {:.3}, \"serve_sessions_per_core\": {:.0}, \
             \"serve_failures\": {}",
            s.p99_ms,
            s.sessions_per_core_at_slo(),
            serve_failures.len()
        )
    });
    let chaos_fields = chaos_fresh.as_ref().map_or_else(String::new, |c| {
        format!(
            ", \"chaos_recovery_frames\": {}, \"chaos_availability\": {:.6}, \
             \"chaos_failures\": {}",
            c.max_recovery_frames,
            c.availability(),
            chaos_failures.len()
        )
    });
    let recover_fields = recover_fresh.as_ref().map_or_else(String::new, |r| {
        format!(
            ", \"recover_replay_frames\": {}, \"recover_snapshot_bytes\": {}, \
             \"recover_restore_ms\": {:.3}, \"recover_failures\": {}",
            r.replay_frames,
            r.snapshot_bytes,
            r.restore_ms,
            recover_failures.len()
        )
    });
    let entry = format!(
        "  {{ \"date\": \"{y:04}-{m:02}-{d:02}\", \"epoch_secs\": {epoch_secs}, \
         \"array\": \"{array}\", \"pooling_k\": {}, \"mode\": \"{}\", \"frames\": {}, \
         \"end_to_end_ms_mean\": {:.3}, \"pool_ms_mean\": {:.3}, \
         \"baseline_ms_mean\": {base_mean:.3}, \"delta_pct\": \
         {delta_pct:.2}{tracked_fields}{scenario_fields}{serve_fields}{chaos_fields}\
         {recover_fields} }}",
        config.pooling_k, config.mode, config.frames, fresh.end_to_end_ms_mean, fresh.pool_ms,
    );
    let history = std::path::Path::new(history_path);
    append_history(history, &entry);
    println!("appended trajectory entry to {}", history.display());

    let mut failed = false;
    if delta_pct > max_regress_pct {
        eprintln!(
            "REGRESSION: end-to-end mean {delta_pct:+.1} % exceeds the allowed \
             +{max_regress_pct:.1} %"
        );
        failed = true;
    }
    if let Some((_, _, tracked_delta_pct)) = tracked {
        if tracked_delta_pct > max_regress_pct {
            eprintln!(
                "REGRESSION: tracked-video mean {tracked_delta_pct:+.1} % exceeds the \
                 allowed +{max_regress_pct:.1} %"
            );
            failed = true;
        }
    }
    for failure in scenario_failures
        .iter()
        .chain(&serve_failures)
        .chain(&chaos_failures)
        .chain(&recover_failures)
    {
        eprintln!("REGRESSION: {failure}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "within budget (+{max_regress_pct:.1} % latency, -{max_iou_drop:.3} IoU, \
         +{max_energy_pct:.1} % energy, +{max_serve_pct:.1} % serve, chaos clean, \
         recovery bit-identical)"
    );
}
