//! Crash-recovery benchmark: warm restart from snapshot plus journal.
//!
//! Runs the fleet of [`hirise_bench::recover`] twice — uninterrupted
//! and killed mid-run at a seeded [`hirise_fault::CrashPlan`] tick —
//! then restores, replays, resumes, and emits
//! `results/BENCH_recover.json` with the axes the `bench_compare`
//! recovery gate hard-fails on: `dropped`, the replay MTTR in frames
//! against its one-snapshot-interval budget, and the post-restore
//! bit-identity verdict.
//!
//! ```text
//! cargo run --release -p hirise-bench --bin recover_stages -- \
//!     [--sessions N] [--frames N] [--out results/BENCH_recover.json] \
//!     [--quick | --full]
//! ```
//!
//! `--quick` shrinks the fleet for a CI smoke — point `--out` somewhere
//! disposable; only standard runs belong in `results/`.

use hirise_bench::args::{Flags, RunSize};
use hirise_bench::recover::{measure, RecoverBenchConfig};

fn main() {
    let flags = Flags::from_env();
    let size = flags.run_size();
    let out = flags.value_of("out").unwrap_or("results/BENCH_recover.json");

    let mut config = RecoverBenchConfig::default();
    match size {
        RunSize::Quick => {
            config.sessions = 4;
            config.frames_per_session = 8;
            config.width = 64;
            config.height = 48;
            config.snapshot_every = 3;
        }
        RunSize::Standard => {}
        RunSize::Full => {
            config.sessions = 16;
            config.frames_per_session = 32;
        }
    }
    if let Some(sessions) = flags.parsed("sessions") {
        config.sessions = sessions;
    }
    if let Some(frames) = flags.parsed("frames") {
        config.frames_per_session = frames;
    }

    println!(
        "recover_stages: {} sessions of {} frames on {}x{} k={}, \
         snapshot every {} ticks, seeded crash rate {}",
        config.sessions,
        config.frames_per_session,
        config.width,
        config.height,
        config.pooling_k,
        config.snapshot_every,
        config.crash_rate
    );
    let result = measure(&config);
    println!(
        "  killed at tick {} of {}; snapshot {} B ({:.0} B/session, {} live), \
         taken in {:.3} ms, restored in {:.3} ms",
        result.crash_tick,
        result.total_ticks,
        result.snapshot_bytes,
        result.snapshot_bytes_per_session(),
        result.snapshot_sessions,
        result.snapshot_ms,
        result.restore_ms
    );
    println!(
        "  replay MTTR: {} frames in {:.3} ms (budget {} frames = one snapshot interval)",
        result.replay_frames, result.replay_ms, result.replay_budget_frames
    );
    println!("  recovered run bit-identical: {}", result.identical);
    assert_eq!(result.dropped, 0, "the recovered run dropped admitted sessions");
    assert!(result.identical, "the recovered run diverged from the uninterrupted twin");
    assert!(
        result.replay_frames <= result.replay_budget_frames,
        "replay MTTR {} exceeds the one-interval budget {}",
        result.replay_frames,
        result.replay_budget_frames
    );

    let path = std::path::Path::new(out);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, result.to_json()).expect("recover JSON is writable");
    println!("wrote {}", path.display());
}
