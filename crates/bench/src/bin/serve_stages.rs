//! Serve-layer saturation benchmark: the multi-tenant capacity number.
//!
//! Drives a [`hirise_serve::ServeEngine`] through the seeded synthetic
//! session mix of [`hirise_bench::serve`] — short and long sessions
//! across the scenario presets, priority spread, bursty arrivals, 3×
//! rated load so the shed ladder engages — and emits
//! `results/BENCH_serve.json` with the headline metric: **sessions one
//! core sustains at the p99 latency SLO**, alongside fleet p50/p99, the
//! deterministic workload counters, and the structurally-zero `dropped`
//! field the `bench_compare` gate hard-fails on.
//!
//! ```text
//! cargo run --release -p hirise-bench --bin serve_stages -- \
//!     [--sessions N] [--frames N] [--out results/BENCH_serve.json] \
//!     [--quick | --full]
//! ```
//!
//! `--quick` shrinks the fleet and array for a CI path smoke — point
//! `--out` somewhere disposable; only standard runs belong in
//! `results/`.

use hirise_bench::args::{Flags, RunSize};
use hirise_bench::serve::{measure, ServeBenchConfig};

fn main() {
    let flags = Flags::from_env();
    let size = flags.run_size();
    let out = flags.value_of("out").unwrap_or("results/BENCH_serve.json");

    let mut config = ServeBenchConfig::default();
    match size {
        RunSize::Quick => {
            config.sessions = 6;
            config.frames_per_session = 4;
            config.width = 96;
            config.height = 72;
            config.keyframe_interval = 4;
            config.rated_sessions = 2;
        }
        RunSize::Standard => {}
        RunSize::Full => {
            config.sessions = 48;
            config.frames_per_session = 16;
            config.rated_sessions = 16;
        }
    }
    if let Some(sessions) = flags.parsed("sessions") {
        config.sessions = sessions;
    }
    if let Some(frames) = flags.parsed("frames") {
        config.frames_per_session = frames;
    }

    println!(
        "serve_stages: {} sessions ({} rated) of ~{} frames on {}x{} k={}",
        config.sessions,
        config.rated_sessions,
        config.frames_per_session,
        config.width,
        config.height,
        config.pooling_k
    );
    let result = measure(&config);
    println!(
        "  served {} frames in {:.1} ms -> {:.1} fps/core",
        result.frames,
        result.wall_ms,
        result.throughput_fps()
    );
    println!(
        "  latency: p50 {:.3} ms, p99 {:.3} ms (SLO {:.1} ms)",
        result.p50_ms, result.p99_ms, result.config.slo_ms
    );
    println!(
        "  fleet: {} admitted, {} completed, {} dropped, {} deferrals, shed max {}",
        result.admitted, result.completed, result.dropped, result.deferred, result.max_shed_level
    );
    println!(
        "  capacity: {:.0} sessions/core at {:.0} fps within the SLO",
        result.sessions_per_core_at_slo(),
        result.config.session_fps
    );
    assert_eq!(result.dropped, 0, "the serve layer dropped admitted sessions");

    let path = std::path::Path::new(out);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, result.to_json()).expect("serve JSON is writable");
    println!("wrote {}", path.display());
}
