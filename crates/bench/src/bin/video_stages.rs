//! Temporal video benchmark: per-frame vs tracked mode.
//!
//! Generates a deterministic synthetic video, runs it through the
//! still-image pipeline (full stage-1 on every frame) and through the
//! temporal [`hirise::temporal::TrackingPipeline`] (stage-1 only on
//! keyframes/drift), and emits `results/BENCH_temporal.json` with both
//! mean frame times, the policy counters, and the mean tracked-ROI IoU
//! against the ground-truth tracks (see the `bench_compare` binary for
//! the trajectory gate).
//!
//! ```text
//! cargo run --release -p hirise-bench --bin video_stages -- \
//!     [--width 640] [--height 480] [--k 2] [--frames 48] \
//!     [--interval 8] [--mode keyed|sequential] \
//!     [--out results/BENCH_temporal.json] [--quick | --full]
//! ```

use hirise::NoiseRngMode;
use hirise_bench::args::Flags;
use hirise_bench::video::{measure, VideoBenchConfig};

fn main() {
    let flags = Flags::from_env();
    let defaults = VideoBenchConfig::default();
    let config = VideoBenchConfig {
        width: flags.parsed("width").unwrap_or(defaults.width),
        height: flags.parsed("height").unwrap_or(defaults.height),
        pooling_k: flags.parsed("k").unwrap_or(defaults.pooling_k),
        frames: flags.parsed("frames").unwrap_or_else(|| flags.run_size().pick(16, 48, 120)),
        keyframe_interval: flags.parsed("interval").unwrap_or(defaults.keyframe_interval),
        mode: flags.parsed::<NoiseRngMode>("mode").unwrap_or(defaults.mode),
    };

    let result = measure(&config);
    println!(
        "temporal video over {} frames at {}x{}, k={}, keyframes every {}, mode={}:",
        config.frames,
        config.width,
        config.height,
        config.pooling_k,
        config.keyframe_interval,
        config.mode
    );
    println!(
        "  per-frame mode {:8.2} ms/frame  ({:.1} fps)",
        result.per_frame_ms_mean,
        1e3 / result.per_frame_ms_mean
    );
    println!(
        "  tracked mode   {:8.2} ms/frame  ({:.1} fps)  -> {:.2}x",
        result.tracked_ms_mean,
        1e3 / result.tracked_ms_mean,
        result.speedup()
    );
    println!(
        "  policy: {} keyframes, {} drift refreshes, {} tracked frames",
        result.keyframes, result.drift_refreshes, result.tracked_frames
    );
    println!("  mean tracked-ROI IoU vs ground truth: {:.3}", result.mean_roi_iou);

    let path = flags.value_of("out").unwrap_or("results/BENCH_temporal.json");
    let path = std::path::Path::new(path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("results directory is writable");
    }
    std::fs::write(path, result.to_json()).expect("bench JSON is writable");
    println!("wrote {}", path.display());
}
