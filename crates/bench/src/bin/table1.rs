//! Regenerates **Table 1**: the analytical relations for data transfer,
//! memory capacity and signal conversion, conventional vs HiRISE, plus a
//! numeric evaluation on the paper's reference configuration.
//!
//! Run: `cargo run --release -p hirise-bench --bin table1`

use hirise::analytical::AnalyticalModel;
use hirise::{HiriseConfig, Rect};

fn main() {
    println!("Table 1 — analytical relations (P = ADC precision in bits)");
    println!("{:-<100}", "");
    println!(
        "{:<22} {:<34} {:<24} {:<16}",
        "System", "Data Transfer", "Memory Capacity", "ADC Conversions"
    );
    println!(
        "{:<22} {:<34} {:<24} {:<16}",
        "Conventional", "D_old = (n*m*3)*P", "Mem_old = (n*m*3)*P", "C_old = n*m*3"
    );
    println!(
        "{:<22} {:<34} {:<24} {:<16}",
        "HiRISE stage-1", "D1_s->p = (n*m/k^2)*P  (x3 if RGB)", "M1 = (n*m/k^2)*P", "C1 = n*m/k^2"
    );
    println!("{:<22} {:<34} {:<24} {:<16}", "", "D1_p->s = j*(4*Words)", "", "0");
    println!(
        "{:<22} {:<34} {:<24} {:<16}",
        "HiRISE stage-2",
        "D2 = 3P * sum_i(W_i*H_i)",
        "M2 = 3P * sum(W_i*H_i)",
        "C2 = 3 * union_i(W_i*H_i)"
    );
    println!();
    println!(
        "Conditions (Eqs. 1-3): D_new << D_old,  Mem_new = max(M1, M2) << Mem_old,  C_new << C_old"
    );
    println!();

    // Numeric instantiation: the paper's reference configuration with 16
    // Table-3-style head ROIs.
    let config = HiriseConfig::paper_reference();
    let rois: Vec<Rect> = (0..16)
        .map(|i| Rect::new(150 * (i as u32 % 8) + 40, 300 + 400 * (i as u32 / 8), 112, 112))
        .collect();
    let model = AnalyticalModel::new(&config, &rois);

    println!(
        "Evaluated at n x m = 2560 x 1920, k = 8, P = 8 bit, j = 16 ROIs of 112 x 112 (RGB stage-1):"
    );
    for (name, b) in [
        ("conventional", model.conventional()),
        ("hirise stage-1", model.stage1()),
        ("hirise stage-2", model.stage2()),
        ("hirise total", model.hirise()),
    ] {
        println!(
            "  {:<15} transfer {:>10.1} kB | memory {:>10.1} kB | conversions {:>12}",
            name,
            b.total_transfer_kb(),
            b.memory_bytes as f64 / 1000.0,
            b.conversions
        );
    }
    println!();
    println!(
        "reductions: transfer {:.1}x, memory {:.1}x, conversions {:.1}x — conditions hold: {}",
        model.transfer_reduction(),
        model.memory_reduction(),
        model.conversion_reduction(),
        model.satisfies_paper_conditions()
    );
}
