//! Scenario-fleet benchmark: the table-driven stress matrix.
//!
//! Runs every scenario of [`hirise_bench::scenario::scenario_matrix`]
//! (occlusion/crossing, scale change, illumination drift + flicker,
//! keyed sensor defects, a 24-object crowd, an emptying scene, and the
//! VGA→4K resolution sweep) through the per-frame and tracked
//! pipelines, and emits one JSON per scenario under `results/scenarios/`
//! carrying latency, accuracy (mean ROI IoU + recall), per-frame-kind
//! sensor energy, and the analog pooling-consistency residual. The
//! `bench_compare` binary re-measures the committed baselines and fails
//! on a latency, IoU, or energy regression.
//!
//! ```text
//! cargo run --release -p hirise-bench --bin scenario_stages -- \
//!     [--scenario crossing] [--out-dir results/scenarios] [--quick]
//! ```
//!
//! `--scenario` filters the matrix by scenario name or baseline label;
//! `--quick` shrinks every entry to a small array and short clip — a CI
//! path smoke, not a baseline regeneration (it still writes to
//! `--out-dir`, so point it somewhere disposable or let CI discard the
//! working tree).

use hirise_bench::args::{Flags, RunSize};
use hirise_bench::scenario::{measure, scenario_matrix};

fn main() {
    let flags = Flags::from_env();
    let filter = flags.value_of("scenario");
    let quick = flags.run_size() == RunSize::Quick;
    let out_dir = std::path::Path::new(flags.value_of("out-dir").unwrap_or("results/scenarios"));

    let mut matrix = scenario_matrix();
    if let Some(name) = filter {
        matrix.retain(|c| c.scenario == name || c.label == name);
        assert!(!matrix.is_empty(), "no scenario matches {name:?}");
    }
    if quick {
        for config in &mut matrix {
            config.width = 192;
            config.height = 144;
            config.pooling_k = 2;
            config.frames = config.frames.min(6);
            config.keyframe_interval = 4;
        }
    }

    std::fs::create_dir_all(out_dir).expect("results directory is writable");
    for config in &matrix {
        let result = measure(config);
        let t = &result.tracked;
        println!(
            "{:>13}: {}x{} k={} over {} frames",
            config.label, config.width, config.height, config.pooling_k, config.frames
        );
        println!(
            "  per-frame {:8.2} ms/frame   tracked {:8.2} ms/frame  -> {:.2}x",
            result.per_frame_ms_mean,
            t.tracked_ms_mean,
            result.speedup()
        );
        println!(
            "  policy: {} keyframes, {} drift refreshes, {} tracked frames",
            t.keyframes, t.drift_refreshes, t.tracked_frames
        );
        println!("  accuracy: mean ROI IoU {:.3}, recall@0.5 {:.3}", t.mean_roi_iou, t.recall);
        println!(
            "  energy: {:.3} mJ total ({:.3} keyframe / {:.3} drift / {:.3} tracked)",
            t.energy_mj_total, t.energy_mj_keyframes, t.energy_mj_drift, t.energy_mj_tracked
        );
        println!("  analog pooling residual: {:.4} V", result.pooling_residual_v);
        let path = out_dir.join(format!("scenario_{}.json", config.label));
        std::fs::write(&path, result.to_json()).expect("scenario JSON is writable");
        println!("  wrote {}", path.display());
    }
}
