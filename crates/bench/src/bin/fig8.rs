//! Regenerates **Fig. 8**: median sensor energy per image under pooling
//! levels 2/4/8 for RGB (left) and grayscale (right) stage-1 capture,
//! across the three dataset presets, on the 2560×1920 array.
//!
//! The baseline converts the full frame (1.85 mJ). Stage-2 conversions
//! cover the *union* of the detected ROIs (each physical pixel converted
//! once); the analog pooling circuit's own energy is reported separately
//! to confirm it is negligible, as the paper notes.
//!
//! Run: `cargo run --release -p hirise-bench --bin fig8 [--quick]`

use hirise_bench::args::RunSize;
use hirise_bench::stats::DatasetRoiStats;
use hirise_energy::{AdcEnergy, ColorChannels, PoolingEnergy, SystemParams};
use hirise_scene::{DatasetSpec, ObjectClass};

const N: u64 = 2560;
const M: u64 = 1920;

fn main() {
    let size = RunSize::from_env();
    let images = size.pick(8, 24, 48);
    let adc = AdcEnergy::PAPER_45NM_8BIT;
    let pooling = PoolingEnergy::PAPER_45NM;

    let baseline = SystemParams::paper_default(N, M, 2).conventional();
    println!(
        "baseline (full-frame conversion): {:.3} mJ (paper: 1.85 mJ)",
        baseline.sensor_energy_mj(&adc, &pooling)
    );
    println!();
    println!(
        "{:<18} {:>6} | {:>22} | {:>22}",
        "dataset", "k", "RGB mJ (s1/s2, red.)", "Gray mJ (s1/s2, red.)"
    );

    let mut pool_energy_min = f64::INFINITY;
    let mut pool_energy_max = 0.0f64;
    for spec in DatasetSpec::paper_presets() {
        let class =
            if spec.name.starts_with("crowdhuman") { Some(ObjectClass::Person) } else { None };
        let stats = DatasetRoiStats::measure(&spec, class, images, 0xF188);
        let (j, sum, union) = stats.at_array(N, M);
        for k in [2u64, 4, 8] {
            let mut cells = Vec::new();
            for color in [ColorChannels::Rgb, ColorChannels::Gray] {
                let params =
                    SystemParams { stage1_color: color, ..SystemParams::paper_default(N, M, k) }
                        .with_rois(j, sum, union);
                let s1 = params.hirise_stage1();
                let s2 = params.hirise_stage2();
                let total = params.hirise_total();
                let e1 = s1.sensor_energy_mj(&adc, &pooling);
                let e2 = s2.sensor_energy_mj(&adc, &pooling);
                let e = total.sensor_energy_mj(&adc, &pooling);
                let reduction = baseline.sensor_energy_mj(&adc, &pooling) / e;
                cells.push(format!("{e:.3} ({e1:.2}/{e2:.2}, {reduction:.1}x)"));
                let ep = pooling.energy_joules(s1.pooling_outputs) * 1e9;
                pool_energy_min = pool_energy_min.min(ep);
                pool_energy_max = pool_energy_max.max(ep);
            }
            println!("{:<18} {:>4}x{} | {:>22} | {:>22}", spec.name, k, k, cells[0], cells[1]);
        }
    }
    println!();
    println!(
        "analog pooling circuit energy across all configurations: {:.2} .. {:.1} nJ (paper: 1.71 .. 91.4 nJ) — orders of magnitude below ADC energy",
        pool_energy_min, pool_energy_max
    );
    println!("paper reference (Crowdhuman RGB): 0.63 / 0.28 / 0.20 mJ for k = 2 / 4 / 8 (3.0x / 6.5x / 9.4x reductions)");
}
