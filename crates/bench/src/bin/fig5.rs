//! Regenerates **Fig. 5**: SPICE-style transients of the analog averaging
//! circuit — (a) two analog inputs, (b) four digital inputs — plus the
//! paper's "extended to 192 inputs" check as a DC sweep.
//!
//! Waveform CSVs are written to `results/fig5a.csv` and `results/fig5b.csv`
//! (columns: time, inputs, avg, ideal).
//!
//! Run: `cargo run --release -p hirise-bench --bin fig5 [--quick]`

use std::fs;

use hirise_analog::testbench::{extended_dc, fig5a, fig5b};
use hirise_analog::Waveform;
use hirise_bench::args::RunSize;

fn main() {
    let size = RunSize::from_env();
    fs::create_dir_all("results").expect("can create results directory");

    println!("Fig. 5(a): two analog PWL inputs, 2-input Fig.-4 circuit");
    let a = fig5a().expect("fig5a bench converges");
    println!(
        "  fitted behaviour: gain {:.4}, offset {:.4} V, nonlinearity {:.2} mV",
        a.behavior.gain,
        a.behavior.offset,
        a.behavior.max_residual * 1e3
    );
    println!(
        "  dynamic tracking error |avg - (gain*mean+offset)| max = {:.2} mV over {} points",
        a.max_tracking_error * 1e3,
        a.avg.len()
    );
    let file = fs::File::create("results/fig5a.csv").expect("can create csv");
    Waveform::write_csv(
        std::io::BufWriter::new(file),
        &[("inp1", &a.inputs[0]), ("inp2", &a.inputs[1]), ("avg", &a.avg), ("ideal", &a.ideal)],
    )
    .expect("csv write succeeds");
    println!("  wrote results/fig5a.csv");

    println!("Fig. 5(b): four digital pulse inputs, 4-input circuit");
    let b = fig5b().expect("fig5b bench converges");
    println!(
        "  avg excursion {:.3} .. {:.3} V (expected {:.3} .. {:.3} V at the all-low/all-high codes)",
        b.avg.min(),
        b.avg.max(),
        b.behavior.apply(0.3),
        b.behavior.apply(0.9)
    );
    println!(
        "  tracking error: {:.2} mV settled / {:.1} mV incl. edge settling transients",
        b.settled_tracking_error * 1e3,
        b.max_tracking_error * 1e3
    );
    let file = fs::File::create("results/fig5b.csv").expect("can create csv");
    let mut columns: Vec<(&str, &Waveform)> = vec![
        ("inp1", &b.inputs[0]),
        ("inp2", &b.inputs[1]),
        ("inp3", &b.inputs[2]),
        ("inp4", &b.inputs[3]),
    ];
    columns.push(("avg", &b.avg));
    columns.push(("ideal", &b.ideal));
    Waveform::write_csv(std::io::BufWriter::new(file), &columns).expect("csv write succeeds");
    println!("  wrote results/fig5b.csv");

    // The paper: "extended to accommodate 192 inputs and demonstrated
    // flawless performance" (8x8 pooling x 3 channels).
    let n = size.pick(48, 192, 192);
    let vectors = size.pick(2, 4, 8);
    println!("Extended bench: {n}-input circuit, {vectors} random DC vectors");
    let ext = extended_dc(n, vectors).expect("extended bench converges");
    println!(
        "  recovered-mean error max = {:.2} mV ({:.2} % of the 600 mV swing)",
        ext.max_error * 1e3,
        100.0 * ext.max_error / 0.6
    );
    println!(
        "  fitted gain {:.4} (ideal divider 0.5), offset {:.4} V",
        ext.behavior.gain, ext.behavior.offset
    );
}
