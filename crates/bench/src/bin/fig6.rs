//! Regenerates **Fig. 6**: peak memory of the two-stage system vs pixel
//! array size, for (a) in-processor scaling and (b) in-sensor scaling.
//!
//! Stage-1 images are scaled to 320×240 in both cases (as in the paper);
//! the models are the MCUNetV2-like person detector (stage 1) and
//! classifier (stage 2) from the zoo, planned by the TFLite-Micro-style
//! arena planner. The 512 kB line is the STM32H743 SRAM budget.
//!
//! Run: `cargo run --release -p hirise-bench --bin fig6`

use hirise_nn::zoo;

const SRAM_BUDGET_KB: f64 = 512.0;
const KB: f64 = 1024.0;

fn main() {
    let arrays: [(u64, u64); 8] = [
        (320, 240),
        (640, 480),
        (960, 720),
        (1280, 960),
        (1600, 1200),
        (1920, 1440),
        (2240, 1680),
        (2560, 1920),
    ];

    // Stage-1 model runs on the 320x240 (gray) scaled image; its peak and
    // the stage-2 model's peak do not depend on the array size.
    let stage1 = zoo::mcunet_v2_detector(320, 240);
    let stage1_peak_kb = stage1.peak_activation_bytes() as f64 / KB;
    // Stage-2 ROI at the paper's head-median scale: 4.375 % of array width.
    println!("Fig. 6 — two-stage peak memory vs pixel array size (MCUNetV2-like models)");
    println!("stage-1 model peak activation: {stage1_peak_kb:.0} kB (paper: 337 kB)");
    println!();
    println!(
        "{:>12} {:>10} | {:>14} {:>14} {:>10} | {:>14} {:>14} {:>10}",
        "array",
        "roi",
        "(a) image kB",
        "(a) total kB",
        "fits?",
        "(b) image kB",
        "(b) total kB",
        "fits?"
    );

    for (n, m) in arrays {
        let roi = ((n as f64 * 0.04375).round() as usize).max(4);
        let stage2 = zoo::mcunet_v2_classifier(roi);
        let stage2_peak_kb = stage2.peak_activation_bytes() as f64 / KB;
        let model_peak_kb = stage1_peak_kb.max(stage2_peak_kb);

        // (a) In-processor scaling: the full frame must be stored digitally
        // before it can be scaled down.
        let image_a_kb = (n * m * 3) as f64 / KB;
        let total_a_kb = image_a_kb + model_peak_kb;

        // (b) In-sensor scaling: only the 320x240 gray stage-1 image and
        // the ROI crop ever exist digitally.
        let stage1_img_kb = (320.0 * 240.0) / KB; // gray
        let roi_img_kb = (roi * roi * 3) as f64 / KB;
        let image_b_kb = stage1_img_kb.max(roi_img_kb);
        let total_b_kb = image_b_kb + model_peak_kb;

        println!(
            "{:>7}x{:<4} {:>5}x{:<4} | {:>14.0} {:>14.0} {:>10} | {:>14.1} {:>14.1} {:>10}",
            n,
            m,
            roi,
            roi,
            image_a_kb,
            total_a_kb,
            if total_a_kb <= SRAM_BUDGET_KB { "yes" } else { "NO" },
            image_b_kb,
            total_b_kb,
            if total_b_kb <= SRAM_BUDGET_KB { "yes" } else { "NO" }
        );
    }

    println!();
    println!(
        "paper shape reproduced: (a) grows with the array and blows past the {SRAM_BUDGET_KB:.0} kB \
         budget (already marginal at 320x240, hopeless beyond); (b) stays flat because the \
         full-resolution image never leaves the analog domain"
    );
    println!(
        "stage-1 gray image: {:.1} kB (paper: kept under the 114 kB SRAM headroom)",
        320.0 * 240.0 / KB
    );
}
