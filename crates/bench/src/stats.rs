//! Measured dataset ROI statistics shared by the Fig. 7 / Fig. 8 / Table 3
//! binaries.
//!
//! The paper's transfer and energy results are functions of per-dataset
//! box statistics (count, Σarea, union area). This module measures them on
//! freshly generated scenes at a fixed reference resolution; the scene
//! generator is scale-free so the area *fractions* transfer to any array
//! size.

use hirise_scene::{BoxStats, DatasetSpec, ObjectClass, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ROI statistics of one dataset preset, as area fractions of the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRoiStats {
    /// Preset name.
    pub dataset: &'static str,
    /// Median boxes per image.
    pub boxes: u64,
    /// Median Σ(box area) / frame area.
    pub sum_area_frac: f64,
    /// Median union(box area) / frame area.
    pub union_area_frac: f64,
    /// Median box width as a fraction of frame width.
    pub box_w_frac: f64,
    /// Median box height as a fraction of frame height.
    pub box_h_frac: f64,
}

impl DatasetRoiStats {
    /// Measures the statistics over `images` scenes, filtered to `class`
    /// (`None` = all non-head classes are kept in the measurement; head
    /// boxes are what Table 3 needs, so pass `Some(Head)` there).
    pub fn measure(
        spec: &DatasetSpec,
        class: Option<ObjectClass>,
        images: usize,
        seed: u64,
    ) -> Self {
        const W: u32 = 640;
        const H: u32 = 480;
        let generator = SceneGenerator::new(spec.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let scenes: Vec<_> = (0..images).map(|_| generator.generate(W, H, &mut rng)).collect();
        let stats = BoxStats::measure(&scenes, class);
        DatasetRoiStats {
            dataset: spec.name,
            boxes: stats.median_count as u64,
            sum_area_frac: stats.median_sum_area_frac,
            union_area_frac: stats.median_union_area_frac,
            box_w_frac: stats.median_box_w as f64 / W as f64,
            box_h_frac: stats.median_box_h as f64 / H as f64,
        }
    }

    /// Scales the fractional statistics to a concrete array size,
    /// returning `(boxes, sum_area_px, union_area_px)`.
    pub fn at_array(&self, n: u64, m: u64) -> (u64, u64, u64) {
        let frame = (n * m) as f64;
        (self.boxes, (self.sum_area_frac * frame) as u64, (self.union_area_frac * frame) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowdhuman_matches_paper_targets() {
        let s = DatasetRoiStats::measure(
            &DatasetSpec::crowdhuman_like(),
            Some(ObjectClass::Person),
            12,
            7,
        );
        assert!((s.sum_area_frac - 0.27).abs() < 0.09, "sum {}", s.sum_area_frac);
        assert!(s.union_area_frac < s.sum_area_frac);
        let (j, sum, union) = s.at_array(2560, 1920);
        assert!((10..=22).contains(&j));
        assert!(sum > union);
    }

    #[test]
    fn head_stats_give_table3_roi_scale() {
        let s = DatasetRoiStats::measure(
            &DatasetSpec::crowdhuman_like(),
            Some(ObjectClass::Head),
            12,
            7,
        );
        // Table 3: head ROI side ≈ 4.4 % of the array width.
        assert!((s.box_w_frac - 0.044).abs() < 0.02, "w frac {}", s.box_w_frac);
    }
}
