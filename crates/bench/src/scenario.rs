//! The scenario-fleet benchmark shared by the `scenario_stages` and
//! `bench_compare` binaries.
//!
//! One measurement runs a [`hirise_scene::ScenarioGenerator`] scenario
//! through the tracked pipeline and reports the three axes every future
//! change is gated on:
//!
//! * **latency** — mean tracked-mode ms/frame (plus the per-frame-mode
//!   mean for the speedup context),
//! * **accuracy** — mean tracked-ROI IoU against the scenario's ground
//!   truth, and recall (the fraction of ground-truth boxes covered by
//!   an ROI at IoU ≥ 0.5),
//! * **energy** — the sensor-side energy of the run
//!   ([`RunReport::sensor_energy_mj_default`]) folded per frame kind
//!   through [`SequenceSummary`], so a policy change that silently
//!   shifts tracked frames back to keyframes shows up as a keyframe
//!   energy jump even when the total barely moves.
//!
//! Each full measurement also runs an `hirise-analog` pooling
//! consistency probe on one representative frame: 16 pooled blocks are
//! fed through the transistor-level [`PoolingCircuit`] and compared
//! against the behavioural [`PoolingConfig::transfer`] the sensor
//! actually uses, pinning the behavioural model to its analog origin on
//! *scenario* data, not just on the synthetic ramps of the
//! `analog_consistency` suite.
//!
//! `scenario_stages` emits one JSON per scenario under
//! `results/scenarios/`; `bench_compare` re-measures every committed
//! baseline and fails on a latency, IoU, *or* energy regression.
//!
//! [`RunReport::sensor_energy_mj_default`]: hirise::RunReport::sensor_energy_mj_default

use std::time::Instant;

use hirise::stream::SequenceSummary;
use hirise::temporal::{TrackerState, TrackingPipeline};
use hirise::{HiriseConfig, HirisePipeline, NoiseRngMode, PipelineScratch, Rect, TemporalConfig};
use hirise_analog::pooling::PoolingCircuit;
use hirise_scene::{ScenarioGenerator, ScenarioSpec};
use hirise_sensor::PoolingConfig;

/// Seed of every committed scenario baseline (fixed: the fleet compares
/// implementations, not scenes).
pub const SCENARIO_SEED: u64 = 0x5CE2;

/// The IoU at which a ground-truth box counts as recalled by an ROI.
pub const RECALL_IOU: f64 = 0.5;

/// Configuration of one scenario measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchConfig {
    /// Scenario preset name ([`ScenarioSpec::by_name`]).
    pub scenario: String,
    /// Baseline label: keys the committed JSON file name (differs from
    /// `scenario` on the resolution sweep, where the same `clean`
    /// layout runs as `sweep_vga` / `sweep_hd` / `sweep_4k`).
    pub label: String,
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Measured video frames.
    pub frames: u32,
    /// Keyframe cadence of the tracked run.
    pub keyframe_interval: u32,
    /// ROI budget (the crowd scenario raises it).
    pub max_rois: usize,
    /// Sensor noise mode under test.
    pub mode: NoiseRngMode,
    /// Scenario seed.
    pub seed: u64,
}

/// The committed scenario matrix: the six stress presets at the
/// reference VGA array, plus the `clean` layout swept VGA→4K. Frame
/// counts shrink as resolution grows to bound the runtime and the
/// per-frame image memory (a 4K RGB f32 frame is ~100 MB).
pub fn scenario_matrix() -> Vec<ScenarioBenchConfig> {
    let entry = |scenario: &str, label: &str, w: u32, h: u32, k: u32, frames: u32, rois: usize| {
        ScenarioBenchConfig {
            scenario: scenario.into(),
            label: label.into(),
            width: w,
            height: h,
            pooling_k: k,
            frames,
            keyframe_interval: 8,
            max_rois: rois,
            mode: NoiseRngMode::default(),
            seed: SCENARIO_SEED,
        }
    };
    vec![
        entry("crossing", "crossing", 640, 480, 2, 32, 8),
        entry("scale", "scale", 640, 480, 2, 32, 8),
        entry("illumination", "illumination", 640, 480, 2, 32, 8),
        entry("defects", "defects", 640, 480, 2, 32, 8),
        entry("crowded", "crowded", 640, 480, 2, 32, 32),
        entry("departure", "departure", 640, 480, 2, 32, 8),
        entry("clean", "sweep_vga", 640, 480, 2, 32, 8),
        entry("clean", "sweep_hd", 1280, 960, 2, 12, 8),
        entry("clean", "sweep_4k", 3840, 2160, 4, 6, 8),
    ]
}

/// The shared pipeline configuration, with the detector's scan range
/// adapted to the scenario's known object statistics (`crowded` objects
/// sit far below the reference range, `scale` tracks sweep far above
/// it) — the same per-dataset anchor calibration `video::pipeline_config`
/// applies to the surveillance clip.
pub fn pipeline_config(config: &ScenarioBenchConfig) -> HiriseConfig {
    let (min_frac, max_frac) = match config.scenario.as_str() {
        "crowded" => (0.05, 0.30),
        "scale" => (0.10, 0.60),
        _ => (0.16, 0.45),
    };
    let detector = hirise::DetectorConfig {
        min_object_frac: min_frac,
        max_object_frac: max_frac,
        aspects: vec![0.4, 0.65],
        part_containment: 0.6,
        part_area_ratio: 0.5,
        part_suppress_ratio: 0.45,
        fill_norm: 0.6,
        ..Default::default()
    };
    HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .detector(detector)
        .max_rois(config.max_rois)
        .roi_margin(2)
        .noise_rng(config.mode)
        .build()
        .expect("valid scenario-bench configuration")
}

/// The tracked-mode measurement of one scenario — everything the
/// `bench_compare` triple gate needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioMeasurement {
    /// Mean frame time of tracked (temporal-pipeline) mode.
    pub tracked_ms_mean: f64,
    /// Scheduled keyframes.
    pub keyframes: u64,
    /// Drift-triggered re-detections.
    pub drift_refreshes: u64,
    /// Pure tracked frames.
    pub tracked_frames: u64,
    /// Mean over all ROIs of each ROI's best IoU against ground truth
    /// (0 when the run produced no ROIs — the departure scenario).
    pub mean_roi_iou: f64,
    /// Fraction of ground-truth boxes covered by an ROI at IoU ≥
    /// [`RECALL_IOU`] (0 when the scenario shows no objects at all).
    pub recall: f64,
    /// Total sensor-side energy of the tracked run, millijoules.
    pub energy_mj_total: f64,
    /// The keyframe share of [`ScenarioMeasurement::energy_mj_total`].
    pub energy_mj_keyframes: f64,
    /// The drift-refresh share.
    pub energy_mj_drift: f64,
    /// The tracked-frame share.
    pub energy_mj_tracked: f64,
}

/// A full scenario result: the tracked measurement plus the per-frame
/// context and the analog consistency probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchResult {
    /// The configuration that produced it.
    pub config: ScenarioBenchConfig,
    /// Mean frame time of per-frame (still-pipeline) mode.
    pub per_frame_ms_mean: f64,
    /// The tracked-mode measurement.
    pub tracked: ScenarioMeasurement,
    /// Worst |circuit − behavioural| pooled-block error of the analog
    /// probe, volts (see [`pooling_consistency`]).
    pub pooling_residual_v: f64,
}

impl ScenarioBenchResult {
    /// Per-frame-mode time over tracked-mode time (0 over zero frames).
    pub fn speedup(&self) -> f64 {
        if !(self.tracked.tracked_ms_mean > 0.0) {
            return 0.0;
        }
        self.per_frame_ms_mean / self.tracked.tracked_ms_mean
    }

    /// Serialises the result in the `results/scenarios/scenario_*.json`
    /// format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let t = &self.tracked;
        format!(
            "{{\n  \"bench\": \"scenario_stages\",\n  \"scenario\": \"{}\",\n  \
             \"label\": \"{}\",\n  \"array\": \"{}x{}\",\n  \"pooling_k\": {},\n  \
             \"mode\": \"{}\",\n  \"frames\": {},\n  \"keyframe_interval\": {},\n  \
             \"max_rois\": {},\n  \"seed\": {},\n  \"per_frame_ms_mean\": {:.3},\n  \
             \"tracked_ms_mean\": {:.3},\n  \"speedup\": {:.3},\n  \"keyframes\": {},\n  \
             \"drift_refreshes\": {},\n  \"tracked_frames\": {},\n  \
             \"mean_roi_iou\": {:.4},\n  \"recall\": {:.4},\n  \
             \"energy_mj_total\": {:.6},\n  \"energy_mj_keyframes\": {:.6},\n  \
             \"energy_mj_drift\": {:.6},\n  \"energy_mj_tracked\": {:.6},\n  \
             \"pooling_residual_v\": {:.6}\n}}\n",
            c.scenario,
            c.label,
            c.width,
            c.height,
            c.pooling_k,
            c.mode,
            c.frames,
            c.keyframe_interval,
            c.max_rois,
            c.seed,
            self.per_frame_ms_mean,
            t.tracked_ms_mean,
            self.speedup(),
            t.keyframes,
            t.drift_refreshes,
            t.tracked_frames,
            t.mean_roi_iou,
            t.recall,
            t.energy_mj_total,
            t.energy_mj_keyframes,
            t.energy_mj_drift,
            t.energy_mj_tracked,
            self.pooling_residual_v,
        )
    }
}

/// Resolves the generator for `config`.
///
/// # Panics
///
/// Panics on an unknown scenario name — the binaries fail loudly rather
/// than silently measuring the wrong scene.
fn generator(config: &ScenarioBenchConfig) -> ScenarioGenerator {
    let spec = ScenarioSpec::by_name(&config.scenario)
        .unwrap_or_else(|| panic!("unknown scenario {:?}", config.scenario));
    ScenarioGenerator::new(spec, config.width, config.height, config.seed)
}

/// Mean over `rois` of each ROI's best IoU against `truth`, as a
/// (sum, count) pair, plus the recalled-box count for `truth`.
fn accuracy_sums(rois: &[Rect], truth: &[Rect]) -> (f64, u64, u64) {
    let iou_sum: f64 =
        rois.iter().map(|r| truth.iter().map(|t| r.iou(t)).fold(0.0, f64::max)).sum();
    let recalled =
        truth.iter().filter(|t| rois.iter().any(|r| r.iou(t) >= RECALL_IOU)).count() as u64;
    (iou_sum, rois.len() as u64, recalled)
}

/// Runs the tracked-mode measurement: one warm-up pass over the whole
/// sequence (buffers reach their high-water sizes), then a timed pass
/// from reset state, with accuracy and energy bookkeeping outside the
/// timed spans. Frames are rendered on demand (pure functions of their
/// index), so only one frame is resident at a time.
///
/// # Panics
///
/// As for [`measure`].
pub fn measure_tracked(config: &ScenarioBenchConfig) -> ScenarioMeasurement {
    let scenario = generator(config);
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let temporal = TemporalConfig::default().keyframe_interval(config.keyframe_interval);
    let tracker =
        TrackingPipeline::new(pipeline_config(config), temporal).expect("valid temporal policy");
    let mut scratch = PipelineScratch::new();
    let mut state = TrackerState::new();
    for i in 0..config.frames {
        let frame = scenario.frame(i);
        tracker.run_frame(&frame.image, &mut state, &mut scratch).expect("warm-up succeeds");
    }
    state.reset();
    let mut summary = SequenceSummary::default();
    let mut tracked_total = 0.0;
    let (mut iou_sum, mut iou_count) = (0.0f64, 0u64);
    let (mut recalled, mut truth_count) = (0u64, 0u64);
    let mut truth: Vec<Rect> = Vec::new();
    for i in 0..config.frames {
        let frame = scenario.frame(i);
        let start = Instant::now();
        let report =
            tracker.run_frame(&frame.image, &mut state, &mut scratch).expect("frame succeeds");
        tracked_total += ms(start.elapsed());
        summary.fold(&report, false);
        truth.clear();
        truth.extend(frame.objects.iter().map(|o| o.bbox));
        let (sum, count, hits) = accuracy_sums(scratch.rois(), &truth);
        iou_sum += sum;
        iou_count += count;
        recalled += hits;
        truth_count += truth.len() as u64;
    }
    ScenarioMeasurement {
        tracked_ms_mean: tracked_total / (config.frames as f64).max(1.0),
        keyframes: summary.keyframes,
        drift_refreshes: summary.drift_refreshes,
        tracked_frames: summary.tracked_frames,
        mean_roi_iou: if iou_count == 0 { 0.0 } else { iou_sum / iou_count as f64 },
        recall: if truth_count == 0 { 0.0 } else { recalled as f64 / truth_count as f64 },
        energy_mj_total: summary.energy_mj,
        energy_mj_keyframes: summary.energy_mj_keyframes,
        energy_mj_drift: summary.energy_mj_drift,
        energy_mj_tracked: summary.energy_mj_tracked,
    }
}

/// The analog pooling-consistency probe: 16 `k×k` blocks spread across
/// one representative frame (mid-sequence) are mapped to the circuit's
/// 0.3–0.9 V operating range and averaged by the transistor-level
/// [`PoolingCircuit`]; the worst absolute deviation from the
/// behavioural [`PoolingConfig::transfer`] the sensor uses is returned,
/// in volts.
///
/// The behavioural constants are fitted at 12 inputs and reused for
/// every pooling size, so the residual here includes the cross-input-
/// count gain variation (< 5 %, see the `analog_consistency` suite) on
/// top of the matched-count fit residual (< 4 mV).
pub fn pooling_consistency(config: &ScenarioBenchConfig) -> f64 {
    let scenario = generator(config);
    let frame = scenario.frame(config.frames / 2);
    let k = config.pooling_k;
    let circuit = PoolingCircuit::builder((k * k) as usize).build().expect("valid circuit");
    let behavioural = PoolingConfig::default();
    let plane = &frame.image.planes()[1]; // green carries most luma
    let (blocks_x, blocks_y) = (config.width / k, config.height / k);
    let mut volts = Vec::with_capacity((k * k) as usize);
    let mut worst = 0.0f64;
    for sy in 0..4u32 {
        for sx in 0..4u32 {
            let bx = (blocks_x - 1) * sx / 3;
            let by = (blocks_y - 1) * sy / 3;
            volts.clear();
            for dy in 0..k {
                for dx in 0..k {
                    let v = f64::from(plane.get(bx * k + dx, by * k + dy));
                    volts.push(0.3 + 0.6 * v.clamp(0.0, 1.0));
                }
            }
            let truth = circuit.dc_average(&volts).expect("dc average converges");
            let mean = volts.iter().sum::<f64>() / volts.len() as f64;
            let model = behavioural.transfer(mean, 0.3, 0.9);
            worst = worst.max((truth - model).abs());
        }
    }
    worst
}

/// Runs the full measurement: the tracked pass, a warmed per-frame-mode
/// pass over the same frames, and the analog consistency probe.
///
/// # Panics
///
/// Panics on an unknown scenario or invalid configuration (e.g. `k`
/// does not tile the array) — these binaries fail loudly rather than
/// emitting bad data.
pub fn measure(config: &ScenarioBenchConfig) -> ScenarioBenchResult {
    let scenario = generator(config);
    let pipeline = HirisePipeline::new(pipeline_config(config));
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut scratch = PipelineScratch::new();
    for i in 0..config.frames.min(2) {
        let frame = scenario.frame(i);
        pipeline.run_with_scratch(&frame.image, &mut scratch).expect("warm-up succeeds");
    }
    let mut per_frame_total = 0.0;
    for i in 0..config.frames {
        let frame = scenario.frame(i);
        let start = Instant::now();
        pipeline.run_with_scratch(&frame.image, &mut scratch).expect("frame succeeds");
        per_frame_total += ms(start.elapsed());
    }
    drop(scratch);
    ScenarioBenchResult {
        config: config.clone(),
        per_frame_ms_mean: per_frame_total / (config.frames as f64).max(1.0),
        tracked: measure_tracked(config),
        pooling_residual_v: pooling_consistency(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{json_f64, json_str};

    /// A small, fast variant of a matrix entry for structural tests.
    fn small(scenario: &str) -> ScenarioBenchConfig {
        ScenarioBenchConfig {
            scenario: scenario.into(),
            label: scenario.into(),
            width: 192,
            height: 144,
            pooling_k: 2,
            frames: 8,
            keyframe_interval: 4,
            max_rois: if scenario == "crowded" { 32 } else { 8 },
            mode: NoiseRngMode::Keyed,
            seed: SCENARIO_SEED,
        }
    }

    #[test]
    fn matrix_covers_the_fleet_and_the_sweep() {
        let matrix = scenario_matrix();
        assert!(matrix.len() >= 6, "matrix shrank to {} entries", matrix.len());
        // Labels are unique (they key the committed files).
        let mut labels: Vec<&str> = matrix.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        let len = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), len, "duplicate scenario labels");
        // Every scenario resolves, and the sweep reaches 4K.
        for c in &matrix {
            assert!(
                ScenarioSpec::by_name(&c.scenario).is_some(),
                "matrix references unknown scenario {:?}",
                c.scenario
            );
            assert_eq!(c.width % c.pooling_k, 0);
            assert_eq!(c.height % c.pooling_k, 0);
        }
        assert!(matrix.iter().any(|c| c.width >= 3840), "the sweep lost its 4K point");
        assert!(matrix.iter().any(|c| c.label == "sweep_vga"));
    }

    #[test]
    fn tracked_measurement_shows_the_scenario_contract() {
        let r = measure_tracked(&small("crossing"));
        assert_eq!(r.keyframes + r.drift_refreshes + r.tracked_frames, 8);
        assert!(r.tracked_ms_mean > 0.0);
        assert!((0.0..=1.0).contains(&r.mean_roi_iou));
        assert!((0.0..=1.0).contains(&r.recall));
        assert!(r.energy_mj_total > 0.0);
        let split = r.energy_mj_keyframes + r.energy_mj_drift + r.energy_mj_tracked;
        assert!((split - r.energy_mj_total).abs() <= 1e-12 * r.energy_mj_total);
    }

    #[test]
    fn departure_scenario_yields_zeros_not_nan() {
        // Frames 20.. of the departure scenario are object-free; over a
        // window starting past the exits the accuracy ratios must be 0.
        let mut cfg = small("departure");
        cfg.frames = 24;
        let r = measure_tracked(&cfg);
        assert!(r.mean_roi_iou.is_finite() && r.recall.is_finite());
        assert!((0.0..=1.0).contains(&r.recall));
        // The whole-fleet invariant that matters: formatting never sees
        // NaN even when a scenario empties out.
        let result = ScenarioBenchResult {
            config: cfg,
            per_frame_ms_mean: 0.0,
            tracked: ScenarioMeasurement {
                tracked_ms_mean: 0.0,
                keyframes: 0,
                drift_refreshes: 0,
                tracked_frames: 0,
                mean_roi_iou: r.mean_roi_iou,
                recall: r.recall,
                energy_mj_total: 0.0,
                energy_mj_keyframes: 0.0,
                energy_mj_drift: 0.0,
                energy_mj_tracked: 0.0,
            },
            pooling_residual_v: 0.0,
        };
        assert_eq!(result.speedup(), 0.0);
        assert!(!result.to_json().contains("NaN"));
    }

    #[test]
    fn pooling_probe_stays_within_the_fit_reuse_envelope() {
        for scenario in ["clean", "defects"] {
            let residual = pooling_consistency(&small(scenario));
            assert!(
                residual < 0.05,
                "{scenario}: circuit vs behavioural pooling diverged by {residual} V"
            );
        }
    }

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let mut cfg = small("defects");
        cfg.label = "defects_small".into();
        let result = ScenarioBenchResult {
            config: cfg,
            per_frame_ms_mean: 12.5,
            tracked: ScenarioMeasurement {
                tracked_ms_mean: 5.0,
                keyframes: 2,
                drift_refreshes: 1,
                tracked_frames: 5,
                mean_roi_iou: 0.625,
                recall: 0.75,
                energy_mj_total: 0.5,
                energy_mj_keyframes: 0.3,
                energy_mj_drift: 0.1,
                energy_mj_tracked: 0.1,
            },
            pooling_residual_v: 0.002,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "bench").as_deref(), Some("scenario_stages"));
        assert_eq!(json_str(&json, "scenario").as_deref(), Some("defects"));
        assert_eq!(json_str(&json, "label").as_deref(), Some("defects_small"));
        assert_eq!(json_str(&json, "array").as_deref(), Some("192x144"));
        assert_eq!(json_f64(&json, "seed"), Some(SCENARIO_SEED as f64));
        assert_eq!(json_f64(&json, "max_rois"), Some(8.0));
        assert_eq!(json_f64(&json, "tracked_ms_mean"), Some(5.0));
        assert_eq!(json_f64(&json, "mean_roi_iou"), Some(0.625));
        assert_eq!(json_f64(&json, "recall"), Some(0.75));
        assert_eq!(json_f64(&json, "energy_mj_total"), Some(0.5));
        assert_eq!(json_f64(&json, "energy_mj_tracked"), Some(0.1));
        assert_eq!(json_f64(&json, "pooling_residual_v"), Some(0.002));
        assert!((json_f64(&json, "speedup").unwrap() - 2.5).abs() < 1e-3);
    }
}
