//! # hirise-bench
//!
//! Shared experiment harness for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the pieces
//! they share:
//!
//! * [`classifier::CropClassifier`] — a trained MLP that assigns classes
//!   to detection crops (the reproduction's analogue of YOLO's
//!   classification head),
//! * [`table2`] — the in-processor vs in-sensor mAP experiment,
//! * [`stats`] — dataset ROI statistics used by the Fig. 7 / Fig. 8 /
//!   Table 3 binaries,
//! * [`stages`] — the stage-breakdown frame benchmark shared by the
//!   `pipeline_stages` profiler and the `bench_compare` trajectory gate,
//! * [`video`] — the temporal (per-frame vs tracked) video benchmark
//!   shared by `video_stages` and `bench_compare`,
//! * [`scenario`] — the scenario-fleet stress benchmark (latency, IoU,
//!   per-kind sensor energy) shared by `scenario_stages` and the
//!   `bench_compare` scenario gate,
//! * [`serve`] — the multi-tenant serve-layer saturation benchmark
//!   (sessions/core at a latency SLO) shared by `serve_stages` and the
//!   `bench_compare` serve gate,
//! * [`chaos`] — the fault-injection recovery benchmark (quarantine,
//!   checkpoint recovery, blast radius) shared by `chaos_stages` and
//!   the `bench_compare` chaos gate,
//! * [`recover`] — the crash-recovery benchmark (snapshot cost, replay
//!   MTTR, post-restore bit-identity) shared by `recover_stages` and
//!   the `bench_compare` recovery gate,
//! * [`args`] — tiny CLI-flag helpers shared by the binaries.

pub mod args;
pub mod chaos;
pub mod classifier;
pub mod recover;
pub mod scenario;
pub mod serve;
pub mod stages;
pub mod stats;
pub mod table2;
pub mod video;

/// Needed by `[[bench]]` targets; re-exported so binaries share versions.
pub use hirise_nn::Mlp;
