//! The Table-2 experiment: in-processor vs in-sensor scaling mAP across
//! datasets, resolutions and colour modes.
//!
//! For every scene the harness produces two stage-1 images:
//!
//! * **in-processor** — conventional full readout, then digital average
//!   pooling (and digital grayscale in gray mode),
//! * **in-sensor** — the analog pooling circuit (behavioural model fitted
//!   from `hirise-analog`), then conversion of only the pooled outputs.
//!
//! The same calibrated detector runs on both; the paper's claim is that
//! the two columns match. The detector threshold is calibrated per
//! (dataset, resolution, colour) on held-out calibration scenes — the
//! analogue of the paper's per-configuration YOLO training — using the
//! *in-processor* images, so the in-sensor column is evaluated with a
//! model "trained" on digital data, exactly like the paper.

use hirise::baseline::InProcessorPipeline;
use hirise::{ColorMode, HiriseConfig, HirisePipeline, SensorConfig};
use hirise_detect::eval::{evaluate, Detection, GroundTruth};
use hirise_detect::{Detector, DetectorConfig};
use hirise_imaging::Image;
use hirise_scene::{DatasetSpec, ObjectClass, Scene, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::classifier::CropClassifier;

/// Configuration of a Table-2 run.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Full-resolution array size (the paper: 2560×1920).
    pub array: (u32, u32),
    /// Pooling factors to evaluate (paper: 8, 4, 2).
    pub ks: Vec<u32>,
    /// Evaluation scenes per dataset.
    pub eval_images: usize,
    /// Calibration scenes per dataset (detector-threshold "training").
    pub cal_images: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Table2Config {
    /// Paper-shaped defaults scaled for a workstation run.
    pub fn standard() -> Self {
        Self { array: (2560, 1920), ks: vec![8, 4, 2], eval_images: 8, cal_images: 4, seed: 42 }
    }

    /// Small, fast setting for smoke runs.
    pub fn quick() -> Self {
        Self { array: (1280, 960), ks: vec![4, 2], eval_images: 3, cal_images: 2, seed: 42 }
    }
}

/// One cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// Pooling factor.
    pub k: u32,
    /// Colour mode.
    pub color: ColorMode,
    /// mAP@0.5 of the in-processor path.
    pub map_in_processor: f64,
    /// mAP@0.5 of the in-sensor path.
    pub map_in_sensor: f64,
}

/// All cells for one dataset.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset preset name.
    pub dataset: &'static str,
    /// Cells in `(k, colour)` order.
    pub cells: Vec<Table2Cell>,
}

/// Builds the dataset-calibrated detector configuration (anchor-style
/// scale/aspect priors from the dataset spec).
pub fn detector_for(spec: &DatasetSpec) -> DetectorConfig {
    DetectorConfig {
        class_aspects: spec
            .classes
            .iter()
            .filter(|c| **c != ObjectClass::Head)
            .map(|c| (c.id(), c.aspect()))
            .collect(),
        min_object_frac: spec.scale_range.0 * 0.7,
        max_object_frac: (spec.scale_range.1 * 1.4).min(0.9),
        score_threshold: 0.025,
        ..DetectorConfig::default()
    }
}

/// Ground truth of one scene in detector-space coordinates (downscaled by
/// `k`), excluding head annotations (bodies only, as in our Table-2 eval).
pub fn scene_ground_truth(scene: &Scene, k: u32) -> Vec<GroundTruth> {
    scene
        .objects
        .iter()
        .filter(|o| o.class != ObjectClass::Head)
        .map(|o| GroundTruth { class: o.class.id(), bbox: o.bbox.scaled(1, k) })
        .collect()
}

fn detect_and_classify(
    detector: &Detector,
    classifier: &CropClassifier,
    image: &Image,
) -> Vec<Detection> {
    let mut dets = detector.detect(image);
    classifier.relabel(image, &mut dets);
    dets
}

fn filter_by_threshold(dets: &[Vec<Detection>], thr: f64) -> Vec<Vec<Detection>> {
    dets.iter().map(|d| d.iter().filter(|x| x.score as f64 >= thr).copied().collect()).collect()
}

/// Runs the full experiment for one dataset, returning one row per
/// (k, colour) combination. `progress` receives human-readable status
/// lines.
pub fn run_dataset(
    spec: &DatasetSpec,
    config: &Table2Config,
    mut progress: impl FnMut(String),
) -> Table2Row {
    let generator = SceneGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (aw, ah) = config.array;

    progress(format!(
        "[{}] generating {} cal + {} eval scenes",
        spec.name, config.cal_images, config.eval_images
    ));
    let cal_scenes: Vec<Scene> =
        (0..config.cal_images).map(|_| generator.generate(aw, ah, &mut rng)).collect();
    let eval_scenes: Vec<Scene> =
        (0..config.eval_images).map(|_| generator.generate(aw, ah, &mut rng)).collect();

    let classes: Vec<ObjectClass> =
        spec.classes.iter().filter(|c| **c != ObjectClass::Head).copied().collect();
    let classifier = CropClassifier::train(&classes, 60, config.seed ^ 0xC1A5);

    let mut cells = Vec::new();
    for &k in &config.ks {
        for color in [ColorMode::Rgb, ColorMode::Gray] {
            let det_cfg = detector_for(spec);
            let in_proc = InProcessorPipeline::new(
                SensorConfig::default(),
                k,
                color,
                Detector::new(det_cfg.clone()),
            );
            let hirise_cfg = HiriseConfig::builder(aw, ah)
                .pooling(k)
                .stage1_color(color)
                .detector(det_cfg.clone())
                .build()
                .expect("pooling factors tile the array");
            let pipeline = HirisePipeline::new(hirise_cfg);

            // Calibration on the in-processor path ("training").
            let mut cal_dets: Vec<Vec<Detection>> = Vec::new();
            let mut cal_gts: Vec<Vec<GroundTruth>> = Vec::new();
            for scene in &cal_scenes {
                let (img, _) = in_proc.scaled_capture(&scene.image).expect("valid pooling");
                cal_dets.push(detect_and_classify(in_proc.detector(), &classifier, &img));
                cal_gts.push(scene_ground_truth(scene, k));
            }
            let mut best = (0.10, -1.0);
            for thr in (1..30).map(|i| i as f64 * 0.025) {
                let filtered = filter_by_threshold(&cal_dets, thr);
                let r = evaluate(&filtered, &cal_gts, 0.5);
                if r.map > best.1 {
                    best = (thr, r.map);
                }
            }
            let threshold = best.0;

            // Evaluation on both paths with the calibrated threshold.
            let mut proc_dets = Vec::new();
            let mut sensor_dets = Vec::new();
            let mut gts = Vec::new();
            for scene in &eval_scenes {
                let (proc_img, _) = in_proc.scaled_capture(&scene.image).expect("valid pooling");
                let (sensor_img, _, _) =
                    pipeline.run_stage1(&scene.image).expect("valid configuration");
                proc_dets.push(detect_and_classify(in_proc.detector(), &classifier, &proc_img));
                sensor_dets.push(detect_and_classify(
                    pipeline.detector(),
                    &classifier,
                    &sensor_img,
                ));
                gts.push(scene_ground_truth(scene, k));
            }
            let map_proc = evaluate(&filter_by_threshold(&proc_dets, threshold), &gts, 0.5).map;
            let map_sensor = evaluate(&filter_by_threshold(&sensor_dets, threshold), &gts, 0.5).map;
            progress(format!(
                "[{}] k={k} {color}: thr={threshold:.2} in-proc {:.3} in-sensor {:.3}",
                spec.name, map_proc, map_sensor
            ));
            cells.push(Table2Cell {
                k,
                color,
                map_in_processor: map_proc,
                map_in_sensor: map_sensor,
            });
        }
    }
    Table2Row { dataset: spec.name, cells }
}

/// Formats rows in the layout of the paper's Table 2.
pub fn format_table(rows: &[Table2Row], array: (u32, u32), ks: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: mAP@0.5, in-processor (In-Proc) vs in-sensor (In-Sen) scaling, {}x{} array",
        array.0, array.1
    );
    let _ = write!(out, "{:<18}", "Resolution");
    for &k in ks {
        let _ = write!(out, "| {:>5}x{:<5} {:>7} ", array.0 / k, array.1 / k, "");
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<18}", "Color / Path");
    for _ in ks {
        let _ = write!(out, "| RGB In-P  In-S | Gray In-P In-S ");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:<18}", row.dataset);
        for &k in ks {
            for color in [ColorMode::Rgb, ColorMode::Gray] {
                if let Some(c) = row.cells.iter().find(|c| c.k == k && c.color == color) {
                    let _ = write!(
                        out,
                        "| {:>5.1}% {:>5.1}% ",
                        100.0 * c.map_in_processor,
                        100.0 * c.map_in_sensor
                    );
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_config_uses_dataset_priors() {
        let spec = DatasetSpec::visdrone_like();
        let cfg = detector_for(&spec);
        assert!(cfg.min_object_frac > 0.0);
        assert!(cfg.max_object_frac <= 0.9);
        assert_eq!(cfg.class_aspects.len(), 9); // heads excluded
    }

    #[test]
    fn ground_truth_scales_and_filters_heads() {
        let generator = SceneGenerator::new(DatasetSpec::crowdhuman_like());
        let mut rng = StdRng::seed_from_u64(5);
        let scene = generator.generate(256, 192, &mut rng);
        let gt1 = scene_ground_truth(&scene, 1);
        let gt2 = scene_ground_truth(&scene, 2);
        assert_eq!(gt1.len(), gt2.len());
        assert!(gt1.iter().all(|g| g.class == ObjectClass::Person.id()));
        assert!(gt2[0].bbox.w <= gt1[0].bbox.w / 2 + 1);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = Table2Config::quick();
        let s = Table2Config::standard();
        assert!(q.eval_images < s.eval_images);
        assert!(q.array.0 < s.array.0);
    }

    #[test]
    fn format_table_mentions_all_datasets() {
        let rows = vec![Table2Row {
            dataset: "demo",
            cells: vec![Table2Cell {
                k: 2,
                color: ColorMode::Rgb,
                map_in_processor: 0.5,
                map_in_sensor: 0.49,
            }],
        }];
        let text = format_table(&rows, (640, 480), &[2]);
        assert!(text.contains("demo"));
        assert!(text.contains("320"));
    }
}
