//! The stage-breakdown frame benchmark shared by the `pipeline_stages`
//! and `bench_compare` binaries, plus the dependency-free JSON helpers
//! they use to read each other's output.
//!
//! One measurement runs the steady-state (zero-allocation) two-stage
//! pipeline over a generated surveillance scene through a warmed
//! [`PipelineScratch`], collecting per-stage [`StageTimings`] and the
//! end-to-end wall time per frame. `pipeline_stages` emits the result as
//! `results/BENCH_pipeline.json`; `bench_compare` re-runs the same
//! configuration and diffs against that committed baseline, appending
//! the outcome to the `results/BENCH_history.json` trajectory.

use std::time::{Duration, Instant};

use hirise::{HiriseConfig, HirisePipeline, NoiseRngMode, PipelineScratch, StageTimings};
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one stage-breakdown measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBenchConfig {
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Measured frames (after two warm-up frames).
    pub frames: usize,
    /// Sensor noise mode under test.
    pub mode: NoiseRngMode,
}

impl Default for StageBenchConfig {
    /// The committed trajectory point: 640×480, k = 2, 30 frames, the
    /// default keyed noise mode.
    fn default() -> Self {
        Self { width: 640, height: 480, pooling_k: 2, frames: 30, mode: NoiseRngMode::default() }
    }
}

/// Aggregated result of one measurement (means over the measured
/// frames, milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBenchResult {
    /// The configuration that produced it.
    pub config: StageBenchConfig,
    /// Mean end-to-end frame time.
    pub end_to_end_ms_mean: f64,
    /// Fastest observed frame.
    pub end_to_end_ms_min: f64,
    /// Mean capture-stage time.
    pub capture_ms: f64,
    /// Mean pool-stage time (analog pooling + stage-1 ADC).
    pub pool_ms: f64,
    /// Mean detect-stage time.
    pub detect_ms: f64,
    /// Mean ROI-readout-stage time.
    pub roi_read_ms: f64,
}

impl StageBenchResult {
    /// Mean throughput implied by the mean frame time.
    pub fn fps_mean(&self) -> f64 {
        1e3 / self.end_to_end_ms_mean
    }

    /// Serialises the result in the `results/BENCH_pipeline.json`
    /// format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"bench\": \"pipeline_stages\",\n  \"array\": \"{}x{}\",\n  \
             \"pooling_k\": {},\n  \"mode\": \"{}\",\n  \"frames\": {},\n  \
             \"end_to_end_ms_mean\": {:.3},\n  \"end_to_end_ms_min\": {:.3},\n  \
             \"fps_mean\": {:.2},\n  \"stages_ms_mean\": {{\n    \"capture\": {:.3},\n    \
             \"pool\": {:.3},\n    \"detect\": {:.3},\n    \"roi_read\": {:.3}\n  }}\n}}\n",
            c.width,
            c.height,
            c.pooling_k,
            c.mode,
            c.frames,
            self.end_to_end_ms_mean,
            self.end_to_end_ms_min,
            self.fps_mean(),
            self.capture_ms,
            self.pool_ms,
            self.detect_ms,
            self.roi_read_ms,
        )
    }
}

/// Runs the measurement: a deterministic generated scene, two warm-up
/// frames, then `config.frames` timed frames through one scratch.
///
/// # Panics
///
/// Panics when the configuration is invalid (e.g. `k` does not tile the
/// array) — these binaries fail loudly rather than emitting bad data.
pub fn measure(config: &StageBenchConfig) -> StageBenchResult {
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(77);
    let scene = generator.generate(config.width, config.height, &mut rng).image;

    let pipeline_config = HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .max_rois(8)
        .noise_rng(config.mode)
        .build()
        .expect("valid stage-bench configuration");
    let pipeline = HirisePipeline::new(pipeline_config);
    let mut scratch = PipelineScratch::new();

    // Warm-up: buffers grow to their steady-state sizes.
    for _ in 0..2 {
        pipeline.run_with_scratch(&scene, &mut scratch).expect("warm-up succeeds");
    }

    let mut totals: Vec<Duration> = Vec::with_capacity(config.frames);
    let mut stages = StageTimings::default();
    for _ in 0..config.frames {
        let start = Instant::now();
        let report = pipeline.run_with_scratch(&scene, &mut scratch).expect("frame succeeds");
        totals.push(start.elapsed());
        stages += report.timings;
    }

    let n = totals.len().max(1) as f64;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    StageBenchResult {
        config: *config,
        end_to_end_ms_mean: totals.iter().map(|&d| ms(d)).sum::<f64>() / n,
        end_to_end_ms_min: totals.iter().map(|&d| ms(d)).fold(f64::INFINITY, f64::min),
        capture_ms: ms(stages.capture) / n,
        pool_ms: ms(stages.pool) / n,
        detect_ms: ms(stages.detect) / n,
        roi_read_ms: ms(stages.roi_read) / n,
    }
}

/// Extracts the value of a `"field": <number>` pair from a flat JSON
/// document (no external JSON dependency in this workspace; the inputs
/// are files this crate itself emits).
pub fn json_f64(json: &str, field: &str) -> Option<f64> {
    let value = json_raw(json, field)?;
    value.trim().parse().ok()
}

/// Extracts the value of a `"field": "<string>"` pair.
pub fn json_str(json: &str, field: &str) -> Option<String> {
    let value = json_raw(json, field)?;
    let value = value.trim();
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Extracts the value of a `"field": true|false` pair.
pub fn json_bool(json: &str, field: &str) -> Option<bool> {
    match json_raw(json, field)?.trim() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// The raw text between `"field":` and the next `,`, `}` or newline.
fn json_raw<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find(['\n', ',', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let result = StageBenchResult {
            config: StageBenchConfig {
                width: 320,
                height: 240,
                pooling_k: 4,
                frames: 3,
                mode: NoiseRngMode::Sequential,
            },
            end_to_end_ms_mean: 12.345,
            end_to_end_ms_min: 11.5,
            capture_ms: 1.0,
            pool_ms: 6.25,
            detect_ms: 3.0,
            roi_read_ms: 2.095,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "array").as_deref(), Some("320x240"));
        assert_eq!(json_str(&json, "mode").as_deref(), Some("sequential"));
        assert_eq!(json_f64(&json, "pooling_k"), Some(4.0));
        assert_eq!(json_f64(&json, "frames"), Some(3.0));
        assert_eq!(json_f64(&json, "end_to_end_ms_mean"), Some(12.345));
        // `"pool"` must not match `"pooling_k"`.
        assert_eq!(json_f64(&json, "pool"), Some(6.25));
        assert_eq!(json_f64(&json, "capture"), Some(1.0));
        assert_eq!(json_f64(&json, "missing"), None);
    }

    #[test]
    fn measurement_produces_consistent_numbers() {
        let cfg = StageBenchConfig {
            width: 64,
            height: 48,
            pooling_k: 2,
            frames: 2,
            mode: NoiseRngMode::Keyed,
        };
        let r = measure(&cfg);
        assert!(r.end_to_end_ms_mean > 0.0);
        assert!(r.end_to_end_ms_min <= r.end_to_end_ms_mean);
        assert!(r.fps_mean() > 0.0);
        let stage_sum = r.capture_ms + r.pool_ms + r.detect_ms + r.roi_read_ms;
        assert!(stage_sum <= r.end_to_end_ms_mean * 1.5, "stages exceed the frame time");
    }
}
