//! Trained crop classifier: the reproduction's analogue of the detector's
//! classification head.
//!
//! The sliding-window detector proposes boxes; this classifier assigns
//! each crop a class by an MLP trained on rendered examples of the
//! dataset's classes. Training happens at full crop fidelity; at low
//! resolutions the crops arrive blurred by pooling, so classification
//! degrades with resolution exactly like the localisation cues do.

use hirise_detect::Detection;
use hirise_imaging::{color, ops, Image, Rect, RgbImage};
use hirise_nn::train::TrainConfig;
use hirise_nn::Mlp;
use hirise_scene::{object, ObjectClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Side length crops are resized to before feature extraction.
const PATCH: u32 = 16;

/// Feature vector: gray pixels + saturation pixels of the resized crop.
fn crop_features(image: &Image, bbox: Rect) -> Vec<f32> {
    let mut features = Vec::with_capacity((PATCH * PATCH * 2) as usize);
    let gray_full = color::to_gray(image);
    let cropped = ops::crop_clamped(gray_full.plane(), bbox)
        .unwrap_or_else(|_| hirise_imaging::Plane::filled(1, 1, 0.0));
    let gray = ops::resize_bilinear(&cropped, PATCH, PATCH).expect("nonzero patch size");
    features.extend_from_slice(gray.as_slice());
    match image.as_rgb() {
        Some(rgb) => {
            let sat_full = color::saturation(rgb);
            let sat_crop = ops::crop_clamped(&sat_full, bbox)
                .unwrap_or_else(|_| hirise_imaging::Plane::filled(1, 1, 0.0));
            let sat = ops::resize_bilinear(&sat_crop, PATCH, PATCH).expect("nonzero patch size");
            features.extend_from_slice(sat.as_slice());
        }
        None => features.extend(std::iter::repeat_n(0.0, (PATCH * PATCH) as usize)),
    }
    features
}

/// An MLP classifier over detection crops for a fixed class list.
#[derive(Debug, Clone)]
pub struct CropClassifier {
    classes: Vec<ObjectClass>,
    mlp: Mlp,
}

impl CropClassifier {
    /// Trains a classifier for `classes` from rendered examples.
    ///
    /// `per_class` examples are rendered on varied backgrounds with size
    /// and colour jitter, then learned with SGD. With a single class the
    /// training collapses to a constant and classification is trivial.
    pub fn train(classes: &[ObjectClass], per_class: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples: Vec<(Vec<f32>, usize)> = Vec::new();
        for (label, &class) in classes.iter().enumerate() {
            for _ in 0..per_class {
                let bg = rng.gen_range(0.3..0.6);
                let size = rng.gen_range(32..72) as u32;
                let h = size;
                let w = ((h as f32 * class.aspect() * rng.gen_range(0.85..1.15)) as u32).max(4);
                let mut canvas = RgbImage::from_fn(w + 8, h + 8, |_, _| (bg, bg, bg));
                let bbox = Rect::new(4, 4, w, h);
                object::render_object(&mut canvas, class, bbox, &mut rng);
                let img = Image::Rgb(canvas);
                samples.push((crop_features(&img, bbox), label));
            }
        }
        let features = (PATCH * PATCH * 2) as usize;
        let mut mlp = Mlp::new(features, 48, classes.len().max(2), &mut rng)
            .expect("classifier dimensions are valid");
        if classes.len() > 1 {
            let cfg = TrainConfig { epochs: 25, learning_rate: 0.03, weight_decay: 1e-4 };
            mlp.train(&samples, &cfg, &mut rng).expect("training data is well-formed");
        }
        Self { classes: classes.to_vec(), mlp }
    }

    /// Classes this classifier distinguishes.
    pub fn classes(&self) -> &[ObjectClass] {
        &self.classes
    }

    /// Classifies one crop, returning the class id.
    pub fn classify(&self, image: &Image, bbox: Rect) -> usize {
        if self.classes.len() == 1 {
            return self.classes[0].id();
        }
        let features = crop_features(image, bbox);
        let label = self.mlp.predict(&features).unwrap_or(0);
        self.classes.get(label).map_or(0, |c| c.id())
    }

    /// Re-labels a detection list in place using crop classification.
    pub fn relabel(&self, image: &Image, detections: &mut [Detection]) {
        for det in detections {
            det.class = self.classify(image, det.bbox);
        }
    }

    /// Hold-out accuracy on freshly rendered crops (sanity metric).
    pub fn holdout_accuracy(&self, per_class: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut correct = 0usize;
        let mut total = 0usize;
        for &class in &self.classes {
            for _ in 0..per_class {
                let bg = rng.gen_range(0.3..0.6);
                let h = rng.gen_range(32..72) as u32;
                let w = ((h as f32 * class.aspect()) as u32).max(4);
                let mut canvas = RgbImage::from_fn(w + 8, h + 8, |_, _| (bg, bg, bg));
                let bbox = Rect::new(4, 4, w, h);
                object::render_object(&mut canvas, class, bbox, &mut rng);
                let img = Image::Rgb(canvas);
                if self.classify(&img, bbox) == class.id() {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_is_trivial() {
        let c = CropClassifier::train(&[ObjectClass::Person], 2, 1);
        let img = Image::Rgb(RgbImage::new(32, 32));
        assert_eq!(c.classify(&img, Rect::new(0, 0, 16, 16)), ObjectClass::Person.id());
    }

    #[test]
    fn learns_person_vs_car() {
        let classes = [ObjectClass::Person, ObjectClass::Car];
        let c = CropClassifier::train(&classes, 40, 7);
        let acc = c.holdout_accuracy(15, 99);
        assert!(acc > 0.8, "holdout accuracy {acc}");
    }

    #[test]
    fn feature_vector_has_fixed_size() {
        let img = Image::Rgb(RgbImage::new(64, 64));
        let f = crop_features(&img, Rect::new(8, 8, 20, 40));
        assert_eq!(f.len(), (PATCH * PATCH * 2) as usize);
        let gray_img = Image::Gray(hirise_imaging::GrayImage::new(64, 64));
        let fg = crop_features(&gray_img, Rect::new(8, 8, 20, 40));
        assert_eq!(fg.len(), (PATCH * PATCH * 2) as usize);
        // Gray images have a zero saturation half.
        assert!(fg[(PATCH * PATCH) as usize..].iter().all(|&v| v == 0.0));
    }
}
