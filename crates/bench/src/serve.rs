//! The serve-layer saturation benchmark shared by the `serve_stages`
//! and `bench_compare` binaries.
//!
//! One measurement drives a [`hirise_serve::ServeEngine`] through a
//! seeded synthetic session mix ([`hirise_serve::traffic`]) to
//! completion and reports the axes the serve gate rides on:
//!
//! * **capacity** — single-core frame throughput, folded with the
//!   nominal per-session frame rate into
//!   [`ServeBenchResult::sessions_per_core_at_slo`]: how many sessions
//!   one core sustains while the fleet p99 stays inside the latency
//!   SLO (0 when the SLO is violated — a saturated fleet has no rated
//!   capacity),
//! * **tail latency** — fleet p50/p99 over the merged per-session
//!   reservoirs,
//! * **the no-drop contract** — `dropped` is re-emitted so the gate can
//!   hard-fail if an admitted session is ever discarded, and the
//!   deterministic counters (`frames`, `deferred`, shed gauge) pin the
//!   workload itself: the same seed must serve the same frames.
//!
//! `serve_stages` emits `results/BENCH_serve.json`; `bench_compare`
//! re-measures the committed baseline with its own configuration and
//! fails on a p99 or sessions-per-core regression (loose budget — wall
//! clock on shared runners is noisy) or on *any* drop or frame-count
//! mismatch (hard, deterministic).

use std::time::Instant;

use hirise::{HiriseConfig, TemporalConfig};
use hirise_serve::{generate, run_plans, ServeConfig, ServeEngine, TrafficConfig};

/// Seed of the committed serve baseline (fixed: the gate compares
/// implementations, not workloads).
pub const SERVE_SEED: u64 = 0x5E12E;

/// Configuration of one serve measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchConfig {
    /// Sessions in the synthetic mix.
    pub sessions: usize,
    /// Frame count of a *short* session; long sessions (a quarter of
    /// the mix) run 3× this.
    pub frames_per_session: u32,
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Undegraded keyframe cadence (shed level 0).
    pub keyframe_interval: u32,
    /// The load the fleet is provisioned for — the shed ladder engages
    /// above it, so `sessions > rated_sessions` exercises degradation.
    pub rated_sessions: usize,
    /// Nominal per-session frame rate the capacity metric is quoted
    /// against (sessions/core = throughput ÷ this).
    pub session_fps: f64,
    /// Fleet p99 latency SLO, ms.
    pub slo_ms: f64,
    /// Traffic seed.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    /// The committed-baseline shape: a 24-session mix at 3× rated load
    /// on a small array, 30 fps sessions, 50 ms p99 SLO.
    fn default() -> Self {
        Self {
            sessions: 24,
            frames_per_session: 8,
            width: 256,
            height: 192,
            pooling_k: 2,
            keyframe_interval: 8,
            rated_sessions: 8,
            session_fps: 30.0,
            slo_ms: 50.0,
            seed: SERVE_SEED,
        }
    }
}

/// The traffic mix a configuration expands to (public so tests and the
/// gate can recompute the expected workload from the same source).
pub fn traffic(config: &ServeBenchConfig) -> TrafficConfig {
    TrafficConfig {
        sessions: config.sessions,
        seed: config.seed,
        short_frames: config.frames_per_session,
        long_frames: config.frames_per_session * 3,
        ..TrafficConfig::default()
    }
}

/// Builds the engine for a configuration. The slab cap equals the
/// session count, so the measurement admits the whole mix — overload is
/// absorbed by the shed ladder, not by refusals.
///
/// # Panics
///
/// Panics on an invalid configuration — the binaries fail loudly rather
/// than emitting bad data.
fn engine(config: &ServeBenchConfig) -> ServeEngine {
    let pipeline = HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .roi_margin(2)
        .build()
        .expect("valid serve-bench pipeline configuration");
    let temporal = TemporalConfig::default().keyframe_interval(config.keyframe_interval);
    let serve = ServeConfig::new(pipeline)
        .temporal(temporal)
        .rated_sessions(config.rated_sessions)
        .max_sessions(config.sessions.max(config.rated_sessions))
        .latency_window(256);
    ServeEngine::new(serve).expect("valid serve-bench fleet configuration")
}

/// One serve measurement: the deterministic fleet counters plus the
/// wall-clock capacity numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchResult {
    /// The configuration that produced it.
    pub config: ServeBenchConfig,
    /// Frames served (deterministic: a pure function of the config).
    pub frames: u64,
    /// Wall-clock time of the timed run, ms.
    pub wall_ms: f64,
    /// Fleet median frame latency, ms.
    pub p50_ms: f64,
    /// Fleet tail frame latency, ms.
    pub p99_ms: f64,
    /// Sessions admitted (deterministic).
    pub admitted: u64,
    /// Sessions refused at the cap (0 by construction here — the slab
    /// is sized to the mix).
    pub rejected: u64,
    /// Sessions that served every requested frame.
    pub completed: u64,
    /// Sessions dropped after admission — structurally zero; re-emitted
    /// so the gate can hard-fail on any future violation.
    pub dropped: u64,
    /// Total (frame × tick) backpressure deferrals (deterministic).
    pub deferred: u64,
    /// Highest shed level stamped on any frame (deterministic).
    pub max_shed_level: u8,
}

impl ServeBenchResult {
    /// Single-core serve throughput, frames per second (0 over a zero
    /// or unmeasurable wall clock).
    pub fn throughput_fps(&self) -> f64 {
        if !(self.wall_ms > 0.0) {
            return 0.0;
        }
        self.frames as f64 / (self.wall_ms / 1e3)
    }

    /// The headline capacity metric: sessions one core sustains at the
    /// nominal per-session frame rate, **provided** the fleet p99 met
    /// the SLO — 0 otherwise (a fleet past its SLO has no rated
    /// capacity, however many frames it pushed).
    pub fn sessions_per_core_at_slo(&self) -> f64 {
        if !(self.config.session_fps > 0.0) || !(self.p99_ms <= self.config.slo_ms) {
            return 0.0;
        }
        (self.throughput_fps() / self.config.session_fps).floor()
    }

    /// Serialises the result in the `results/BENCH_serve.json` format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"bench\": \"serve_stages\",\n  \"array\": \"{}x{}\",\n  \
             \"pooling_k\": {},\n  \"keyframe_interval\": {},\n  \"sessions\": {},\n  \
             \"frames_per_session\": {},\n  \"rated_sessions\": {},\n  \
             \"session_fps\": {:.1},\n  \"slo_ms\": {:.1},\n  \"seed\": {},\n  \
             \"frames\": {},\n  \"wall_ms\": {:.3},\n  \"throughput_fps\": {:.3},\n  \
             \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \
             \"sessions_per_core_at_slo\": {:.0},\n  \"admitted\": {},\n  \
             \"rejected\": {},\n  \"completed\": {},\n  \"dropped\": {},\n  \
             \"deferred\": {},\n  \"max_shed_level\": {}\n}}\n",
            c.width,
            c.height,
            c.pooling_k,
            c.keyframe_interval,
            c.sessions,
            c.frames_per_session,
            c.rated_sessions,
            c.session_fps,
            c.slo_ms,
            c.seed,
            self.frames,
            self.wall_ms,
            self.throughput_fps(),
            self.p50_ms,
            self.p99_ms,
            self.sessions_per_core_at_slo(),
            self.admitted,
            self.rejected,
            self.completed,
            self.dropped,
            self.deferred,
            self.max_shed_level,
        )
    }
}

/// Runs the measurement: one untimed warm pass over the whole workload
/// (allocator and cache state settle, per the repo's bench idiom), then
/// a timed pass on a fresh engine. Serving is single-threaded, so the
/// throughput — and the capacity metric derived from it — is per core.
///
/// # Panics
///
/// Panics on an invalid configuration or a failed frame.
pub fn measure(config: &ServeBenchConfig) -> ServeBenchResult {
    let plans = generate(&traffic(config));
    let mut warm = engine(config);
    run_plans(&mut warm, &plans).expect("warm serve pass succeeds");
    let mut timed = engine(config);
    let start = Instant::now();
    run_plans(&mut timed, &plans).expect("timed serve pass succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let summary = timed.summary();
    ServeBenchResult {
        config: config.clone(),
        frames: summary.frames,
        wall_ms,
        p50_ms: summary.p50_ms,
        p99_ms: summary.p99_ms,
        admitted: summary.admitted,
        rejected: summary.rejected,
        completed: summary.completed,
        dropped: summary.dropped,
        deferred: summary.deferred,
        max_shed_level: summary.max_shed_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{json_f64, json_str};

    /// A small, fast fleet for structural tests: 6 sessions at 3× rated
    /// load on a tiny array.
    fn small() -> ServeBenchConfig {
        ServeBenchConfig {
            sessions: 6,
            frames_per_session: 4,
            width: 64,
            height: 48,
            pooling_k: 2,
            keyframe_interval: 4,
            rated_sessions: 2,
            session_fps: 30.0,
            slo_ms: 250.0,
            seed: SERVE_SEED,
        }
    }

    #[test]
    fn measurement_serves_the_whole_mix_without_drops() {
        let config = small();
        let expected: u64 =
            generate(&traffic(&config)).iter().map(|p| u64::from(p.spec.frames)).sum();
        let r = measure(&config);
        assert_eq!(r.dropped, 0, "the no-drop contract leaked into the bench");
        assert_eq!(r.rejected, 0, "the slab is sized to the mix; nothing should be refused");
        assert_eq!(r.admitted, config.sessions as u64);
        assert_eq!(r.completed, r.admitted, "every admitted session must finish");
        assert_eq!(r.frames, expected, "served frames must match the planned workload");
        assert!(r.max_shed_level >= 1, "3x rated load never engaged the shed ladder");
        assert!(r.wall_ms > 0.0 && r.throughput_fps() > 0.0);
        assert!(r.p50_ms > 0.0 && r.p99_ms >= r.p50_ms);
    }

    #[test]
    fn deterministic_counters_are_pure_in_the_config() {
        let a = measure(&small());
        let b = measure(&small());
        // Wall clock varies run to run; everything the gate hard-fails
        // on must not.
        assert_eq!(
            (a.frames, a.admitted, a.completed, a.deferred, a.max_shed_level),
            (b.frames, b.admitted, b.completed, b.deferred, b.max_shed_level),
        );
    }

    #[test]
    fn capacity_metric_zeroes_past_the_slo() {
        let base = ServeBenchResult {
            config: small(),
            frames: 600,
            wall_ms: 1000.0,
            p50_ms: 2.0,
            p99_ms: 5.0,
            admitted: 6,
            rejected: 0,
            completed: 6,
            dropped: 0,
            deferred: 0,
            max_shed_level: 1,
        };
        // 600 frames/s over 30 fps sessions → 20 sessions/core.
        assert_eq!(base.sessions_per_core_at_slo(), 20.0);
        let late = ServeBenchResult { p99_ms: 400.0, ..base.clone() };
        assert_eq!(late.sessions_per_core_at_slo(), 0.0, "past the SLO there is no capacity");
        let nan = ServeBenchResult { p99_ms: f64::NAN, ..base.clone() };
        assert_eq!(nan.sessions_per_core_at_slo(), 0.0, "NaN p99 must not rate capacity");
        let unmeasured = ServeBenchResult { wall_ms: 0.0, ..base };
        assert_eq!(unmeasured.throughput_fps(), 0.0);
    }

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let result = ServeBenchResult {
            config: small(),
            frames: 48,
            wall_ms: 120.5,
            p50_ms: 2.25,
            p99_ms: 7.5,
            admitted: 6,
            rejected: 0,
            completed: 6,
            dropped: 0,
            deferred: 12,
            max_shed_level: 2,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "bench").as_deref(), Some("serve_stages"));
        assert_eq!(json_str(&json, "array").as_deref(), Some("64x48"));
        assert_eq!(json_f64(&json, "pooling_k"), Some(2.0));
        assert_eq!(json_f64(&json, "keyframe_interval"), Some(4.0));
        assert_eq!(json_f64(&json, "sessions"), Some(6.0));
        assert_eq!(json_f64(&json, "frames_per_session"), Some(4.0));
        assert_eq!(json_f64(&json, "rated_sessions"), Some(2.0));
        assert_eq!(json_f64(&json, "session_fps"), Some(30.0));
        assert_eq!(json_f64(&json, "slo_ms"), Some(250.0));
        assert_eq!(json_f64(&json, "seed"), Some(SERVE_SEED as f64));
        assert_eq!(json_f64(&json, "frames"), Some(48.0));
        assert_eq!(json_f64(&json, "wall_ms"), Some(120.5));
        assert_eq!(json_f64(&json, "p50_ms"), Some(2.25));
        assert_eq!(json_f64(&json, "p99_ms"), Some(7.5));
        assert_eq!(json_f64(&json, "deferred"), Some(12.0));
        assert_eq!(json_f64(&json, "dropped"), Some(0.0));
        assert_eq!(json_f64(&json, "max_shed_level"), Some(2.0));
        // 48 frames / 0.1205 s ≈ 398 fps → 13 sessions/core at 30 fps.
        assert_eq!(json_f64(&json, "sessions_per_core_at_slo"), Some(13.0));
        assert!(!json.contains("NaN"));
    }
}
