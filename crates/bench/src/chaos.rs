//! The chaos benchmark shared by the `chaos_stages` and `bench_compare`
//! binaries: recovery under a seeded fault plan.
//!
//! One measurement runs the same scenario-backed fleet twice — once
//! fault-free, once with a [`hirise_fault::ChaosInjector`] panicking one
//! session mid-stream — and reports the recovery axes the chaos gate
//! rides on:
//!
//! * **fleet survival** — the faulted run must complete every session
//!   with `dropped == 0`; a panic is a session-level event, never a
//!   fleet-level one,
//! * **blast radius** — exactly the planned session quarantined, and
//!   every *other* session's deterministic summary bit-identical to the
//!   fault-free run ([`ChaosBenchResult::others_bit_identical`]),
//! * **recovery** — the quarantined session restored from its keyframe
//!   checkpoint and re-detecting within
//!   [`ChaosBenchConfig::keyframe_interval`] frames
//!   ([`ChaosBenchResult::max_recovery_frames`]),
//! * **availability** — the fraction of requested frames that produced
//!   output (only the poisoned frames themselves are lost).
//!
//! `chaos_stages` emits `results/BENCH_chaos.json`; `bench_compare`
//! re-measures the committed baseline with its own configuration and
//! hard-fails on any fleet abort, drop, blast-radius leak, or a
//! recovery span over the (loose) `--max-recovery-frames` budget.

use std::sync::Arc;
use std::time::Instant;

use hirise::{HiriseConfig, TemporalConfig};
use hirise_fault::{faulty_source_for, ChaosInjector, FaultConfig, FaultPlan};
use hirise_serve::{ServeConfig, ServeEngine, ServeSummary, SessionSpec};

/// Seed of the committed chaos baseline (fixed: the gate compares
/// recovery machinery, not fault schedules).
pub const CHAOS_SEED: u64 = 0xC4A05;

/// Scenario presets the fleet cycles through (session `i` runs preset
/// `i % 3`).
const SCENARIOS: [&str; 3] = ["clean", "illumination", "defects"];

/// Configuration of one chaos measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBenchConfig {
    /// Sessions in the fleet.
    pub sessions: usize,
    /// Frames per session.
    pub frames_per_session: u32,
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Keyframe cadence — and therefore the checkpoint cadence and the
    /// recovery budget.
    pub keyframe_interval: u32,
    /// The session the plan panics (engine-assigned id, admission
    /// order).
    pub panic_session: u64,
    /// The frame index of the injected panic.
    pub panic_frame: u32,
    /// Fault-plan seed (also salts the per-session scenario seeds).
    pub seed: u64,
}

impl Default for ChaosBenchConfig {
    /// The committed-baseline shape: 8 sessions of 16 frames, one panic
    /// injected mid-stream into session 3, fleet provisioned at rated
    /// load so every effect in the report is the fault's.
    fn default() -> Self {
        Self {
            sessions: 8,
            frames_per_session: 16,
            width: 128,
            height: 96,
            pooling_k: 2,
            keyframe_interval: 4,
            panic_session: 3,
            panic_frame: 6,
            seed: CHAOS_SEED,
        }
    }
}

/// The seeded fault plan a configuration expands to (public so tests
/// and the gate can recompute the schedule from the same source).
///
/// # Panics
///
/// Panics on an invalid fault model — the binaries fail loudly rather
/// than emitting bad data.
pub fn plan(config: &ChaosBenchConfig) -> Arc<FaultPlan> {
    let faults = FaultConfig::default().panic_at(config.panic_session, config.panic_frame);
    Arc::new(FaultPlan::new(config.seed, faults).expect("valid chaos fault model"))
}

/// Runs the fleet to completion, with the plan's injector attached when
/// `inject` is set. Both runs draw frames through the same fault-wrapped
/// sources (sensor rates are zero, so the frames are clean and
/// identical); only the injector differs.
fn run(config: &ChaosBenchConfig, inject: bool) -> ServeSummary {
    let pipeline = HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .roi_margin(2)
        .build()
        .expect("valid chaos-bench pipeline configuration");
    let temporal = TemporalConfig::default().keyframe_interval(config.keyframe_interval);
    let plan = plan(config);
    let mut serve = ServeConfig::new(pipeline)
        .temporal(temporal)
        .rated_sessions(config.sessions.max(1))
        .max_sessions(config.sessions.max(1))
        .latency_window(128);
    if inject {
        serve = serve.fault(Arc::new(ChaosInjector::new(Arc::clone(&plan))));
    }
    let mut engine = ServeEngine::new(serve).expect("valid chaos-bench fleet configuration");
    for i in 0..config.sessions {
        let spec = SessionSpec::default()
            .name(format!("c{i}"))
            .scenario(SCENARIOS[i % SCENARIOS.len()])
            .seed(config.seed ^ i as u64)
            .frames(config.frames_per_session)
            .frames_per_tick(2);
        let source = faulty_source_for(&spec, config.width, config.height, &plan, i as u64)
            .expect("chaos-bench scenario preset exists");
        engine.admit(spec, source).expect("chaos-bench fleet fits its slab");
    }
    engine.drain().expect("chaos-bench fleet survives its fault plan");
    engine.summary()
}

/// One chaos measurement: the faulted run's recovery counters plus the
/// blast-radius comparison against the fault-free twin.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBenchResult {
    /// The configuration that produced it.
    pub config: ChaosBenchConfig,
    /// Frames that produced output in the faulted run (requested minus
    /// poisoned).
    pub frames: u64,
    /// Wall-clock time of the faulted run, ms.
    pub wall_ms: f64,
    /// Sessions dropped — structurally zero; the gate hard-fails on it.
    pub dropped: u64,
    /// Sessions that served every requested frame.
    pub completed: u64,
    /// Sessions quarantined by the isolation boundary.
    pub quarantined: u64,
    /// Quarantined sessions whose every fault recovered from its
    /// checkpoint.
    pub recovered: u64,
    /// The longest fault-to-recovery span paid, in served frames.
    pub max_recovery_frames: u32,
    /// Frames consumed by the isolation boundary (panicked, no output).
    pub poisoned_frames: u64,
    /// Whether every non-faulted session's deterministic summary is
    /// bit-identical to the fault-free run.
    pub others_bit_identical: bool,
}

impl ChaosBenchResult {
    /// Fraction of requested frames that produced output in the faulted
    /// run (1.0 = nothing lost; the injected panic costs exactly its
    /// poisoned frames).
    pub fn availability(&self) -> f64 {
        let requested = self.config.sessions as u64 * u64::from(self.config.frames_per_session);
        if requested == 0 {
            return 0.0;
        }
        self.frames as f64 / requested as f64
    }

    /// Serialises the result in the `results/BENCH_chaos.json` format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"bench\": \"chaos_stages\",\n  \"array\": \"{}x{}\",\n  \
             \"pooling_k\": {},\n  \"keyframe_interval\": {},\n  \"sessions\": {},\n  \
             \"frames_per_session\": {},\n  \"panic_session\": {},\n  \
             \"panic_frame\": {},\n  \"seed\": {},\n  \"frames\": {},\n  \
             \"wall_ms\": {:.3},\n  \"dropped\": {},\n  \"completed\": {},\n  \
             \"quarantined\": {},\n  \"recovered\": {},\n  \"max_recovery_frames\": {},\n  \
             \"poisoned_frames\": {},\n  \"availability\": {:.6},\n  \
             \"others_bit_identical\": {}\n}}\n",
            c.width,
            c.height,
            c.pooling_k,
            c.keyframe_interval,
            c.sessions,
            c.frames_per_session,
            c.panic_session,
            c.panic_frame,
            c.seed,
            self.frames,
            self.wall_ms,
            self.dropped,
            self.completed,
            self.quarantined,
            self.recovered,
            self.max_recovery_frames,
            self.poisoned_frames,
            self.availability(),
            self.others_bit_identical,
        )
    }
}

/// Runs the measurement: the fault-free twin first (doubling as the
/// warm pass, per the repo's bench idiom), then the timed faulted run,
/// then the per-session blast-radius diff.
///
/// # Panics
///
/// Panics on an invalid configuration or a fleet abort — a chaos run
/// that cannot complete is a result the gate must never see as data.
pub fn measure(config: &ChaosBenchConfig) -> ChaosBenchResult {
    let clean = run(config, false);
    let start = Instant::now();
    let chaos = run(config, true);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let others_bit_identical = clean.sessions.len() == chaos.sessions.len()
        && clean
            .sessions
            .iter()
            .zip(&chaos.sessions)
            .filter(|(c, _)| c.id.0 != config.panic_session)
            .all(|(c, f)| !f.poisoned && c.summary == f.summary && c.deferred == f.deferred);
    let poisoned_frames = chaos.sessions.iter().map(|r| r.poisoned_frames).sum();
    ChaosBenchResult {
        config: config.clone(),
        frames: chaos.frames,
        wall_ms,
        dropped: chaos.dropped,
        completed: chaos.completed,
        quarantined: chaos.quarantined,
        recovered: chaos.recovered,
        max_recovery_frames: chaos.max_recovery_frames,
        poisoned_frames,
        others_bit_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{json_bool, json_f64, json_str};

    /// A small, fast fleet for structural tests.
    fn small() -> ChaosBenchConfig {
        ChaosBenchConfig {
            sessions: 4,
            frames_per_session: 8,
            width: 64,
            height: 48,
            panic_session: 1,
            panic_frame: 3,
            ..ChaosBenchConfig::default()
        }
    }

    #[test]
    fn measurement_quarantines_exactly_the_planned_session() {
        let config = small();
        let r = measure(&config);
        assert_eq!(r.dropped, 0, "a session panic must never drop a session");
        assert_eq!(r.completed, config.sessions as u64, "every session must finish");
        assert_eq!(r.quarantined, 1, "exactly the planned fault fires");
        assert_eq!(r.recovered, 1, "the quarantined session must recover");
        assert!(
            (1..=config.keyframe_interval).contains(&r.max_recovery_frames),
            "recovery took {} frames, budget is {}",
            r.max_recovery_frames,
            config.keyframe_interval
        );
        assert_eq!(r.poisoned_frames, 1);
        assert!(r.others_bit_identical, "the fault's blast radius left its session");
        let requested = config.sessions as u64 * u64::from(config.frames_per_session);
        assert_eq!(r.frames, requested - 1, "only the poisoned frame is lost");
        assert!((r.availability() - (requested - 1) as f64 / requested as f64).abs() < 1e-12);
        assert!(r.wall_ms > 0.0);
    }

    #[test]
    fn deterministic_counters_are_pure_in_the_config() {
        let a = measure(&small());
        let b = measure(&small());
        assert_eq!(
            (a.frames, a.quarantined, a.recovered, a.max_recovery_frames, a.others_bit_identical),
            (b.frames, b.quarantined, b.recovered, b.max_recovery_frames, b.others_bit_identical),
        );
    }

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let result = ChaosBenchResult {
            config: small(),
            frames: 31,
            wall_ms: 42.5,
            dropped: 0,
            completed: 4,
            quarantined: 1,
            recovered: 1,
            max_recovery_frames: 3,
            poisoned_frames: 1,
            others_bit_identical: true,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "bench").as_deref(), Some("chaos_stages"));
        assert_eq!(json_str(&json, "array").as_deref(), Some("64x48"));
        assert_eq!(json_f64(&json, "sessions"), Some(4.0));
        assert_eq!(json_f64(&json, "frames_per_session"), Some(8.0));
        assert_eq!(json_f64(&json, "keyframe_interval"), Some(4.0));
        assert_eq!(json_f64(&json, "panic_session"), Some(1.0));
        assert_eq!(json_f64(&json, "panic_frame"), Some(3.0));
        assert_eq!(json_f64(&json, "seed"), Some(CHAOS_SEED as f64));
        assert_eq!(json_f64(&json, "frames"), Some(31.0));
        assert_eq!(json_f64(&json, "dropped"), Some(0.0));
        assert_eq!(json_f64(&json, "quarantined"), Some(1.0));
        assert_eq!(json_f64(&json, "recovered"), Some(1.0));
        assert_eq!(json_f64(&json, "max_recovery_frames"), Some(3.0));
        assert_eq!(json_f64(&json, "poisoned_frames"), Some(1.0));
        assert_eq!(json_bool(&json, "others_bit_identical"), Some(true));
        // 31 of 32 requested frames produced output.
        assert!((json_f64(&json, "availability").unwrap() - 31.0 / 32.0).abs() < 1e-6);
        assert!(!json.contains("NaN"));
    }
}
