//! The crash-recovery benchmark shared by the `recover_stages` and
//! `bench_compare` binaries: warm restart from snapshot plus journal.
//!
//! One measurement drives the same staggered-arrival fleet twice — once
//! uninterrupted, once killed mid-run at a tick drawn from a seeded
//! [`hirise_fault::CrashPlan`] — then restores the last snapshot,
//! replays the journal tail, resumes the remaining arrivals, and
//! reports the recovery axes the `bench_compare` recovery gate rides
//! on:
//!
//! * **snapshot cost** — the serialized slab size
//!   ([`RecoverBenchResult::snapshot_bytes`], also per live session)
//!   and the wall-clock time to take and to restore one snapshot,
//! * **replay MTTR** — the frames re-served between the last snapshot
//!   and the crash point ([`RecoverBenchResult::replay_frames`]),
//!   bounded by one snapshot interval's worth of fleet frames
//!   ([`RecoverBenchResult::replay_budget_frames`]),
//! * **crash consistency** — the recovered run's deterministic summary
//!   and journal bit-identical to the uninterrupted twin, and the
//!   restored engine re-snapshotting to the exact bytes it was restored
//!   from ([`RecoverBenchResult::identical`]).
//!
//! `recover_stages` emits `results/BENCH_recover.json`; `bench_compare`
//! re-measures the committed baseline with its own configuration and
//! hard-fails on any drop, a replay over `--max-replay-frames`, or any
//! post-restore divergence.

use std::sync::Arc;
use std::time::Instant;

use hirise::{HiriseConfig, TemporalConfig};
use hirise_fault::{CrashPlan, FaultConfig, FaultPlan};
use hirise_serve::{
    run_plans_journaled, ArrivalJournal, ServeConfig, ServeEngine, ServeSummary, SessionPlan,
    SessionSpec,
};

/// Seed of the committed recovery baseline (fixed: the gate compares
/// recovery machinery, not kill schedules).
pub const RECOVER_SEED: u64 = 0x2EC0;

/// The fleet's site id in the crash domain (one replica under test).
const FLEET: u64 = 0;

/// Frames every session requests per tick (fixed: it scales the replay
/// budget, so the gate must re-derive the same number).
const FRAMES_PER_TICK: u32 = 2;

/// Scenario presets the fleet cycles through (session `i` runs preset
/// `i % 3`).
const SCENARIOS: [&str; 3] = ["clean", "illumination", "defects"];

/// Configuration of one crash-recovery measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverBenchConfig {
    /// Sessions in the fleet (arrivals staggered over four ticks).
    pub sessions: usize,
    /// Frames per session.
    pub frames_per_session: u32,
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Keyframe cadence (also the tracker checkpoint cadence inside
    /// each snapshot).
    pub keyframe_interval: u32,
    /// Ticks between periodic snapshots — and therefore the replay
    /// budget in ticks.
    pub snapshot_every: u64,
    /// Per-tick probability of the seeded crash draw.
    pub crash_rate: f64,
    /// Crash-plan seed (also salts the per-session scenario seeds).
    pub seed: u64,
}

impl Default for RecoverBenchConfig {
    /// The committed-baseline shape: 8 sessions of 16 frames arriving
    /// over four ticks, a snapshot every 4 ticks, and a seeded kill
    /// drawn from the first crash after the first boundary.
    fn default() -> Self {
        Self {
            sessions: 8,
            frames_per_session: 16,
            width: 128,
            height: 96,
            pooling_k: 2,
            keyframe_interval: 4,
            snapshot_every: 4,
            crash_rate: 0.15,
            seed: RECOVER_SEED,
        }
    }
}

/// The seeded crash schedule a configuration expands to (public so
/// tests and the gate can recompute the kill tick from the same
/// source).
///
/// # Panics
///
/// Panics on an invalid fault model — the binaries fail loudly rather
/// than emitting bad data.
pub fn crash_plan(config: &RecoverBenchConfig) -> CrashPlan {
    let mut faults = FaultConfig::default();
    faults.serve.crash_rate = config.crash_rate;
    CrashPlan::new(Arc::new(
        FaultPlan::new(config.seed, faults).expect("valid recover-bench crash model"),
    ))
}

/// The arrival plans a configuration expands to: session `i` arrives at
/// tick `i % 4`, so the crash lands on a fleet mid-admission-wave more
/// often than not.
pub fn plans(config: &RecoverBenchConfig) -> Vec<SessionPlan> {
    let mut plans: Vec<SessionPlan> = (0..config.sessions)
        .map(|i| SessionPlan {
            at_tick: (i % 4) as u64,
            spec: SessionSpec::default()
                .name(format!("r{i}"))
                .scenario(SCENARIOS[i % SCENARIOS.len()])
                .seed(config.seed ^ i as u64)
                .frames(config.frames_per_session)
                .frames_per_tick(FRAMES_PER_TICK),
        })
        .collect();
    plans.sort_by_key(|p| p.at_tick);
    plans
}

fn serve_config(config: &RecoverBenchConfig) -> ServeConfig {
    let pipeline = HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .roi_margin(2)
        .build()
        .expect("valid recover-bench pipeline configuration");
    ServeConfig::new(pipeline)
        .temporal(TemporalConfig::default().keyframe_interval(config.keyframe_interval))
        .rated_sessions(config.sessions.max(1))
        .max_sessions(config.sessions.max(1))
        .latency_window(128)
}

/// Deterministic-summary equality: everything but the wall-clock
/// latency percentiles, with energy compared bit-exactly.
fn summaries_identical(a: &ServeSummary, b: &ServeSummary) -> bool {
    a.ticks == b.ticks
        && a.frames == b.frames
        && a.completed == b.completed
        && a.dropped == b.dropped
        && a.deferred == b.deferred
        && a.quarantined == b.quarantined
        && a.recovered == b.recovered
        && a.max_shed_level == b.max_shed_level
        && a.energy_mj.to_bits() == b.energy_mj.to_bits()
        && a.sessions.len() == b.sessions.len()
        && a.sessions
            .iter()
            .zip(&b.sessions)
            .all(|(x, y)| x.id == y.id && x.summary == y.summary && x.deferred == y.deferred)
}

/// One crash-recovery measurement: snapshot and restore costs, replay
/// MTTR, and the bit-identity verdict against the uninterrupted twin.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverBenchResult {
    /// The configuration that produced it.
    pub config: RecoverBenchConfig,
    /// The tick the seeded schedule killed the engine at.
    pub crash_tick: u64,
    /// Ticks the uninterrupted run took to drain.
    pub total_ticks: u64,
    /// Frames served by the recovered run (crash leg + replay +
    /// resume) — structurally equal to the uninterrupted run's.
    pub frames: u64,
    /// Sessions dropped — structurally zero; the gate hard-fails on it.
    pub dropped: u64,
    /// Sessions that served every requested frame.
    pub completed: u64,
    /// Serialized size of the restored snapshot, bytes.
    pub snapshot_bytes: u64,
    /// Live sessions inside that snapshot.
    pub snapshot_sessions: u64,
    /// Wall-clock time to take one snapshot of the restored mid-run
    /// slab, ms.
    pub snapshot_ms: f64,
    /// Wall-clock time to restore the engine from snapshot bytes, ms.
    pub restore_ms: f64,
    /// Wall-clock time to replay the journal tail, ms.
    pub replay_ms: f64,
    /// Frames re-served during replay — the recovery's MTTR numerator.
    pub replay_frames: u64,
    /// The replay budget: one snapshot interval's worth of fleet frames
    /// (`snapshot_every × sessions × frames_per_tick`).
    pub replay_budget_frames: u64,
    /// Whether the recovered run is bit-identical to the uninterrupted
    /// twin: same deterministic summary, same journal, and the restored
    /// engine re-snapshots to the exact bytes it was restored from.
    pub identical: bool,
}

impl RecoverBenchResult {
    /// Serialized snapshot cost per live session, bytes.
    pub fn snapshot_bytes_per_session(&self) -> f64 {
        if self.snapshot_sessions == 0 {
            return 0.0;
        }
        self.snapshot_bytes as f64 / self.snapshot_sessions as f64
    }

    /// Serialises the result in the `results/BENCH_recover.json`
    /// format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"bench\": \"recover_stages\",\n  \"array\": \"{}x{}\",\n  \
             \"pooling_k\": {},\n  \"keyframe_interval\": {},\n  \"snapshot_every\": {},\n  \
             \"sessions\": {},\n  \"frames_per_session\": {},\n  \"crash_rate\": {:.3},\n  \
             \"seed\": {},\n  \"crash_tick\": {},\n  \"total_ticks\": {},\n  \
             \"frames\": {},\n  \"dropped\": {},\n  \"completed\": {},\n  \
             \"snapshot_bytes\": {},\n  \"snapshot_sessions\": {},\n  \
             \"snapshot_bytes_per_session\": {:.1},\n  \"snapshot_ms\": {:.3},\n  \
             \"restore_ms\": {:.3},\n  \"replay_ms\": {:.3},\n  \"replay_frames\": {},\n  \
             \"replay_budget_frames\": {},\n  \"identical\": {}\n}}\n",
            c.width,
            c.height,
            c.pooling_k,
            c.keyframe_interval,
            c.snapshot_every,
            c.sessions,
            c.frames_per_session,
            c.crash_rate,
            c.seed,
            self.crash_tick,
            self.total_ticks,
            self.frames,
            self.dropped,
            self.completed,
            self.snapshot_bytes,
            self.snapshot_sessions,
            self.snapshot_bytes_per_session(),
            self.snapshot_ms,
            self.restore_ms,
            self.replay_ms,
            self.replay_frames,
            self.replay_budget_frames,
            self.identical,
        )
    }
}

/// Runs the measurement: the uninterrupted twin first (doubling as the
/// warm pass, per the repo's bench idiom), then the crash leg killed at
/// the seeded schedule's first post-boundary tick, then the timed
/// restore → re-snapshot → replay → resume sequence, then the
/// bit-identity verdict.
///
/// The kill window starts one tick past the first snapshot boundary so
/// the warm path (restore, not cold start) is always the one measured;
/// when a short run's seeded schedule never fires inside the window,
/// the kill lands two ticks before completion instead.
///
/// # Panics
///
/// Panics on an invalid configuration, a fleet abort, or a failed
/// restore/replay — a recovery that cannot complete is a result the
/// gate must never see as data.
pub fn measure(config: &RecoverBenchConfig) -> RecoverBenchResult {
    let plans = plans(config);
    let factory = |spec: &SessionSpec| hirise_serve::source_for(spec, config.width, config.height);

    // Uninterrupted reference.
    let mut engine =
        ServeEngine::new(serve_config(config)).expect("valid recover-bench fleet configuration");
    let mut reference_journal = ArrivalJournal::new();
    run_plans_journaled(
        &mut engine,
        &plans,
        &factory,
        &mut reference_journal,
        config.snapshot_every,
        None,
        &mut |_| false,
    )
    .expect("recover-bench reference run completes");
    let reference = engine.summary();
    let total_ticks = reference.ticks;

    // The kill tick comes from the seeded schedule, constrained past
    // the first boundary (so a snapshot exists) and before the drain.
    let window = (config.snapshot_every + 1)..total_ticks;
    let crash_tick = crash_plan(config)
        .first_crash_in(FLEET, window)
        .unwrap_or_else(|| total_ticks.saturating_sub(2).max(config.snapshot_every + 1));

    // Crash leg.
    let mut engine =
        ServeEngine::new(serve_config(config)).expect("valid recover-bench fleet configuration");
    let mut journal = ArrivalJournal::new();
    let outcome = run_plans_journaled(
        &mut engine,
        &plans,
        &factory,
        &mut journal,
        config.snapshot_every,
        None,
        &mut |tick| tick == crash_tick,
    )
    .expect("recover-bench crash leg serves until the kill");
    assert_eq!(outcome.crashed_at, Some(crash_tick), "the kill tick must land mid-run");
    drop(engine);
    let snapshot = outcome.snapshot.expect("a kill past the first boundary leaves a snapshot");
    let snapshot_bytes = snapshot.len() as u64;
    let snapshot_sessions = snapshot.live_sessions();

    // Timed warm restart: restore, re-snapshot the restored slab,
    // replay the journal tail, resume the remaining arrivals.
    let start = Instant::now();
    let mut recovered = ServeEngine::restore(&snapshot, serve_config(config), &factory)
        .expect("recover-bench snapshot restores");
    let restore_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let resnapshot = recovered.snapshot();
    let snapshot_ms = start.elapsed().as_secs_f64() * 1e3;
    let round_trip = resnapshot.as_bytes() == snapshot.as_bytes();
    let start = Instant::now();
    let replay_frames =
        recovered.replay_from(&journal, &factory).expect("recover-bench journal replays");
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;
    run_plans_journaled(
        &mut recovered,
        &plans[journal.admissions()..],
        &factory,
        &mut journal,
        config.snapshot_every,
        None,
        &mut |_| false,
    )
    .expect("recover-bench resumed run completes");
    let summary = recovered.summary();

    RecoverBenchResult {
        config: config.clone(),
        crash_tick,
        total_ticks,
        frames: summary.frames,
        dropped: summary.dropped,
        completed: summary.completed,
        snapshot_bytes,
        snapshot_sessions,
        snapshot_ms,
        restore_ms,
        replay_ms,
        replay_frames,
        replay_budget_frames: config.snapshot_every
            * config.sessions as u64
            * u64::from(FRAMES_PER_TICK),
        identical: round_trip
            && summaries_identical(&reference, &summary)
            && journal == reference_journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{json_bool, json_f64, json_str};

    /// A small, fast fleet for structural tests.
    fn small() -> RecoverBenchConfig {
        RecoverBenchConfig {
            sessions: 4,
            frames_per_session: 8,
            width: 64,
            height: 48,
            snapshot_every: 3,
            ..RecoverBenchConfig::default()
        }
    }

    #[test]
    fn measurement_recovers_bit_identically_within_budget() {
        let config = small();
        let r = measure(&config);
        assert!(r.identical, "the recovered run diverged from the uninterrupted twin");
        assert_eq!(r.dropped, 0, "a crash must never drop an admitted session");
        assert_eq!(r.completed, config.sessions as u64, "every session must finish");
        assert_eq!(
            r.frames,
            config.sessions as u64 * u64::from(config.frames_per_session),
            "every requested frame must be served"
        );
        assert!(
            r.crash_tick > config.snapshot_every && r.crash_tick < r.total_ticks,
            "kill tick {} must land after the first boundary and before the drain at {}",
            r.crash_tick,
            r.total_ticks
        );
        assert!(r.snapshot_bytes > 0, "the restored snapshot cannot be empty");
        assert!(r.snapshot_sessions > 0, "a mid-run snapshot holds live sessions");
        assert!(r.snapshot_bytes_per_session() > 0.0);
        assert!(
            r.replay_frames <= r.replay_budget_frames,
            "replay MTTR {} exceeds the one-interval budget {}",
            r.replay_frames,
            r.replay_budget_frames
        );
    }

    #[test]
    fn deterministic_counters_are_pure_in_the_config() {
        let a = measure(&small());
        let b = measure(&small());
        assert_eq!(
            (a.crash_tick, a.total_ticks, a.frames, a.snapshot_bytes, a.replay_frames, a.identical),
            (b.crash_tick, b.total_ticks, b.frames, b.snapshot_bytes, b.replay_frames, b.identical),
        );
    }

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let result = RecoverBenchResult {
            config: small(),
            crash_tick: 5,
            total_ticks: 9,
            frames: 32,
            dropped: 0,
            completed: 4,
            snapshot_bytes: 4096,
            snapshot_sessions: 4,
            snapshot_ms: 0.4,
            restore_ms: 0.6,
            replay_ms: 2.5,
            replay_frames: 12,
            replay_budget_frames: 24,
            identical: true,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "bench").as_deref(), Some("recover_stages"));
        assert_eq!(json_str(&json, "array").as_deref(), Some("64x48"));
        assert_eq!(json_f64(&json, "sessions"), Some(4.0));
        assert_eq!(json_f64(&json, "frames_per_session"), Some(8.0));
        assert_eq!(json_f64(&json, "snapshot_every"), Some(3.0));
        assert_eq!(json_f64(&json, "seed"), Some(RECOVER_SEED as f64));
        assert_eq!(json_f64(&json, "crash_tick"), Some(5.0));
        assert_eq!(json_f64(&json, "total_ticks"), Some(9.0));
        assert_eq!(json_f64(&json, "frames"), Some(32.0));
        assert_eq!(json_f64(&json, "dropped"), Some(0.0));
        assert_eq!(json_f64(&json, "snapshot_bytes"), Some(4096.0));
        assert_eq!(json_f64(&json, "snapshot_sessions"), Some(4.0));
        assert_eq!(json_f64(&json, "snapshot_bytes_per_session"), Some(1024.0));
        assert_eq!(json_f64(&json, "replay_frames"), Some(12.0));
        assert_eq!(json_f64(&json, "replay_budget_frames"), Some(24.0));
        assert_eq!(json_bool(&json, "identical"), Some(true));
        assert!(!json.contains("NaN"));
    }
}
