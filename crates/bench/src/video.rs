//! The temporal video benchmark shared by the `video_stages` and
//! `bench_compare` binaries.
//!
//! One measurement generates a deterministic synthetic video
//! ([`hirise_scene::VideoGenerator`]) and runs it twice through warmed
//! scratch:
//!
//! * **per-frame mode** — the still-image [`HirisePipeline`] on every
//!   frame (full pooled capture + detection each time, frames
//!   independent): the status quo this PR's temporal pipeline competes
//!   against;
//! * **tracked mode** — the [`TrackingPipeline`] with the configured
//!   keyframe cadence: non-keyframes skip the pool and detect stages
//!   entirely.
//!
//! Besides the two mean frame times the measurement reports the tracked
//! run's policy counters (keyframes / drift refreshes / tracked frames)
//! and its **mean tracked-ROI IoU** against the generator's ground-truth
//! tracks — the accuracy side of the latency trade. `video_stages`
//! emits the result as `results/BENCH_temporal.json`; `bench_compare`
//! re-measures the committed configuration and gates regressions.

use std::time::Instant;

use hirise::temporal::{TrackerState, TrackingPipeline};
use hirise::{HiriseConfig, HirisePipeline, NoiseRngMode, PipelineScratch, Rect, TemporalConfig};
use hirise_scene::{VideoGenerator, VideoSpec};

/// Seed of the benchmark's video sequence (fixed: the bench compares
/// implementations, not scenes).
const VIDEO_SEED: u64 = 0x3141;

/// Configuration of one temporal video measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoBenchConfig {
    /// Array width in pixels.
    pub width: u32,
    /// Array height in pixels.
    pub height: u32,
    /// In-sensor pooling factor.
    pub pooling_k: u32,
    /// Measured video frames.
    pub frames: u32,
    /// Keyframe cadence of the tracked run.
    pub keyframe_interval: u32,
    /// Sensor noise mode under test.
    pub mode: NoiseRngMode,
}

impl Default for VideoBenchConfig {
    /// The committed trajectory point: the reference 640×480 / k = 2
    /// array over 48 frames, keyframes every 8, keyed noise.
    fn default() -> Self {
        Self {
            width: 640,
            height: 480,
            pooling_k: 2,
            frames: 48,
            keyframe_interval: 8,
            mode: NoiseRngMode::default(),
        }
    }
}

/// Aggregated result of one video measurement (means over the measured
/// frames, milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoBenchResult {
    /// The configuration that produced it.
    pub config: VideoBenchConfig,
    /// Mean frame time of per-frame (still-pipeline) mode.
    pub per_frame_ms_mean: f64,
    /// Mean frame time of tracked (temporal-pipeline) mode.
    pub tracked_ms_mean: f64,
    /// Scheduled keyframes in the tracked run.
    pub keyframes: u64,
    /// Drift-triggered re-detections in the tracked run.
    pub drift_refreshes: u64,
    /// Pure tracked frames (capture + ROI read only).
    pub tracked_frames: u64,
    /// Mean over all tracked-mode ROIs of each ROI's best IoU against
    /// the frame's ground-truth boxes.
    pub mean_roi_iou: f64,
}

impl VideoBenchResult {
    /// Per-frame-mode time over tracked-mode time (0 for a degenerate
    /// measurement over zero frames — a ratio of two zero means is
    /// meaningless, not NaN).
    pub fn speedup(&self) -> f64 {
        if !(self.tracked_ms_mean > 0.0) {
            return 0.0;
        }
        self.per_frame_ms_mean / self.tracked_ms_mean
    }

    /// Serialises the result in the `results/BENCH_temporal.json`
    /// format.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"bench\": \"video_stages\",\n  \"array\": \"{}x{}\",\n  \
             \"pooling_k\": {},\n  \"mode\": \"{}\",\n  \"frames\": {},\n  \
             \"keyframe_interval\": {},\n  \"per_frame_ms_mean\": {:.3},\n  \
             \"tracked_ms_mean\": {:.3},\n  \"speedup\": {:.3},\n  \
             \"keyframes\": {},\n  \"drift_refreshes\": {},\n  \
             \"tracked_frames\": {},\n  \"mean_roi_iou\": {:.4}\n}}\n",
            c.width,
            c.height,
            c.pooling_k,
            c.mode,
            c.frames,
            c.keyframe_interval,
            self.per_frame_ms_mean,
            self.tracked_ms_mean,
            self.speedup(),
            self.keyframes,
            self.drift_refreshes,
            self.tracked_frames,
            self.mean_roi_iou,
        )
    }
}

/// The video seed backing [`measure`] (exposed so the test suite can
/// evaluate exactly the committed benchmark scene).
pub fn reference_seed() -> u64 {
    VIDEO_SEED
}

/// The pipeline configuration both modes share: 8 ROIs, and a detector
/// calibrated to the surveillance video spec — scan range and aspects
/// matched to the known object statistics (the reproduction's analogue
/// of per-dataset anchor tuning, as `table2` does for the still
/// datasets) plus aggressive part-to-whole grouping so one walking
/// person yields one box rather than a head box and a torso box.
pub fn pipeline_config(config: &VideoBenchConfig) -> HiriseConfig {
    let detector = hirise::DetectorConfig {
        min_object_frac: 0.16,
        max_object_frac: 0.45,
        aspects: vec![0.4, 0.65],
        part_containment: 0.6,
        part_area_ratio: 0.5,
        part_suppress_ratio: 0.45,
        fill_norm: 0.6,
        ..Default::default()
    };
    HiriseConfig::builder(config.width, config.height)
        .pooling(config.pooling_k)
        .detector(detector)
        .max_rois(8)
        .roi_margin(2)
        .noise_rng(config.mode)
        .build()
        .expect("valid video-bench configuration")
}

/// Mean over `rois` of each ROI's best IoU against `truth`; returns the
/// (sum, count) pair so the caller can fold across frames.
fn iou_sums(rois: &[Rect], truth: &[Rect]) -> (f64, u64) {
    let sum: f64 = rois.iter().map(|r| truth.iter().map(|t| r.iou(t)).fold(0.0, f64::max)).sum();
    (sum, rois.len() as u64)
}

/// The tracked-mode half of a measurement — what the `bench_compare`
/// regression gate needs, without paying for the per-frame-mode pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedMeasurement {
    /// Mean frame time of tracked (temporal-pipeline) mode.
    pub tracked_ms_mean: f64,
    /// Scheduled keyframes.
    pub keyframes: u64,
    /// Drift-triggered re-detections.
    pub drift_refreshes: u64,
    /// Pure tracked frames.
    pub tracked_frames: u64,
    /// Mean over all ROIs of each ROI's best IoU against ground truth.
    pub mean_roi_iou: f64,
}

// Frames are rendered on demand in both measurement passes (every frame
// is a pure function of its index) and always outside the timed spans,
// so only one frame is resident at a time — at 640×480×3 f32 a
// materialised 48-frame clip would hold ~180 MB for nothing.

/// Runs the tracked-mode measurement only: one warm-up pass over the
/// whole sequence (buffers reach their high-water sizes), then a timed
/// pass from reset state, with IoU bookkeeping outside the timed spans.
///
/// # Panics
///
/// As for [`measure`].
pub fn measure_tracked(config: &VideoBenchConfig) -> TrackedMeasurement {
    let video =
        VideoGenerator::new(VideoSpec::surveillance(), config.width, config.height, VIDEO_SEED);
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let temporal = TemporalConfig::default().keyframe_interval(config.keyframe_interval);
    let tracker =
        TrackingPipeline::new(pipeline_config(config), temporal).expect("valid temporal policy");
    let mut scratch = PipelineScratch::new();
    let mut state = TrackerState::new();
    for i in 0..config.frames {
        let frame = video.frame(i);
        tracker.run_frame(&frame.image, &mut state, &mut scratch).expect("warm-up succeeds");
    }
    state.reset();
    let mut tracked_total = 0.0;
    let mut iou_sum = 0.0;
    let mut iou_count = 0u64;
    let mut truth: Vec<Rect> = Vec::new();
    for i in 0..config.frames {
        let frame = video.frame(i);
        let start = Instant::now();
        tracker.run_frame(&frame.image, &mut state, &mut scratch).expect("frame succeeds");
        tracked_total += ms(start.elapsed());
        truth.clear();
        truth.extend(frame.objects.iter().map(|o| o.bbox));
        let (sum, count) = iou_sums(scratch.rois(), &truth);
        iou_sum += sum;
        iou_count += count;
    }
    TrackedMeasurement {
        tracked_ms_mean: tracked_total / (config.frames as f64).max(1.0),
        keyframes: state.keyframes(),
        drift_refreshes: state.drift_refreshes(),
        tracked_frames: state.tracked_frames(),
        mean_roi_iou: if iou_count == 0 { 0.0 } else { iou_sum / iou_count as f64 },
    }
}

/// Runs the full measurement: one deterministic video, two warmed
/// passes (per-frame and tracked), identical frames and sensor
/// settings.
///
/// # Panics
///
/// Panics when the configuration is invalid (e.g. `k` does not tile the
/// array) — these binaries fail loudly rather than emitting bad data.
pub fn measure(config: &VideoBenchConfig) -> VideoBenchResult {
    let video =
        VideoGenerator::new(VideoSpec::surveillance(), config.width, config.height, VIDEO_SEED);
    let pipeline = HirisePipeline::new(pipeline_config(config));
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;

    // Per-frame mode: the still pipeline on every frame.
    let mut scratch = PipelineScratch::new();
    for i in 0..config.frames.min(2) {
        let frame = video.frame(i);
        pipeline.run_with_scratch(&frame.image, &mut scratch).expect("warm-up succeeds");
    }
    let mut per_frame_total = 0.0;
    for i in 0..config.frames {
        let frame = video.frame(i);
        let start = Instant::now();
        pipeline.run_with_scratch(&frame.image, &mut scratch).expect("frame succeeds");
        per_frame_total += ms(start.elapsed());
    }

    let tracked = measure_tracked(config);
    VideoBenchResult {
        config: *config,
        per_frame_ms_mean: per_frame_total / (config.frames as f64).max(1.0),
        tracked_ms_mean: tracked.tracked_ms_mean,
        keyframes: tracked.keyframes,
        drift_refreshes: tracked.drift_refreshes,
        tracked_frames: tracked.tracked_frames,
        mean_roi_iou: tracked.mean_roi_iou,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{json_f64, json_str};

    #[test]
    fn json_roundtrips_through_the_emitted_format() {
        let result = VideoBenchResult {
            config: VideoBenchConfig {
                width: 320,
                height: 240,
                pooling_k: 4,
                frames: 12,
                keyframe_interval: 6,
                mode: NoiseRngMode::Sequential,
            },
            per_frame_ms_mean: 20.5,
            tracked_ms_mean: 8.25,
            keyframes: 2,
            drift_refreshes: 1,
            tracked_frames: 9,
            mean_roi_iou: 0.6125,
        };
        let json = result.to_json();
        assert_eq!(json_str(&json, "bench").as_deref(), Some("video_stages"));
        assert_eq!(json_str(&json, "array").as_deref(), Some("320x240"));
        assert_eq!(json_str(&json, "mode").as_deref(), Some("sequential"));
        assert_eq!(json_f64(&json, "per_frame_ms_mean"), Some(20.5));
        assert_eq!(json_f64(&json, "tracked_ms_mean"), Some(8.25));
        assert_eq!(json_f64(&json, "keyframe_interval"), Some(6.0));
        assert_eq!(json_f64(&json, "mean_roi_iou"), Some(0.6125));
        assert!((json_f64(&json, "speedup").unwrap() - 20.5 / 8.25).abs() < 1e-3);
    }

    #[test]
    fn empty_clip_measurement_is_all_zeros_not_nan() {
        // A zero-frame clip (or equivalently a clip whose objects have
        // all exited and that yields no ROIs) must report clean zeros:
        // every downstream consumer formats these into JSON, where NaN
        // is not even representable.
        let cfg = VideoBenchConfig {
            width: 160,
            height: 120,
            pooling_k: 2,
            frames: 0,
            keyframe_interval: 4,
            mode: NoiseRngMode::Keyed,
        };
        let r = measure(&cfg);
        assert_eq!(r.per_frame_ms_mean, 0.0);
        assert_eq!(r.tracked_ms_mean, 0.0);
        assert_eq!(r.mean_roi_iou, 0.0, "zero-ROI IoU must be 0, not NaN");
        assert_eq!(r.speedup(), 0.0, "0/0 speedup must be 0, not NaN");
        assert!(r.speedup().is_finite() && r.mean_roi_iou.is_finite());
        // And the emitted JSON stays parseable (no "NaN" literals).
        let json = r.to_json();
        assert!(!json.contains("NaN"), "NaN leaked into the JSON: {json}");
        assert_eq!(json_f64(&json, "speedup"), Some(0.0));
    }

    #[test]
    fn measurement_shows_the_temporal_contract() {
        // Small array, quick frames: the point here is the *structure*
        // (counters add up, tracked skips work, IoU meaningful), not
        // wall-clock magnitudes — those belong to the release binary.
        let cfg = VideoBenchConfig {
            width: 192,
            height: 144,
            pooling_k: 2,
            frames: 12,
            keyframe_interval: 4,
            mode: NoiseRngMode::Keyed,
        };
        let r = measure(&cfg);
        assert!(r.per_frame_ms_mean > 0.0 && r.tracked_ms_mean > 0.0);
        assert_eq!(r.keyframes + r.drift_refreshes + r.tracked_frames, 12);
        assert!(r.keyframes >= 3, "12 frames at interval 4 schedule ≥ 3 keyframes");
        assert!(r.tracked_frames > 0, "no frame was ever served from tracks");
        assert!((0.0..=1.0).contains(&r.mean_roi_iou));
        assert!(r.mean_roi_iou > 0.3, "tracked ROIs miss the objects: {}", r.mean_roi_iou);
        assert!(r.speedup() > 1.0, "tracked mode slower than per-frame: {:?}", r);
    }
}
