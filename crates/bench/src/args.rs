//! Minimal CLI-flag parsing shared by the experiment binaries.

/// Run size of an experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSize {
    /// Few images / coarse sweeps; finishes in seconds to a couple of
    /// minutes.
    Quick,
    /// The defaults used for `EXPERIMENTS.md`.
    Standard,
    /// More images for tighter statistics.
    Full,
}

impl RunSize {
    /// Parses `--quick` / `--full` from `std::env::args` (default
    /// [`RunSize::Standard`]).
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            RunSize::Quick
        } else if args.iter().any(|a| a == "--full") {
            RunSize::Full
        } else {
            RunSize::Standard
        }
    }

    /// Picks one of three values by run size.
    pub fn pick<T: Copy>(&self, quick: T, standard: T, full: T) -> T {
        match self {
            RunSize::Quick => quick,
            RunSize::Standard => standard,
            RunSize::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_size() {
        assert_eq!(RunSize::Quick.pick(1, 2, 3), 1);
        assert_eq!(RunSize::Standard.pick(1, 2, 3), 2);
        assert_eq!(RunSize::Full.pick(1, 2, 3), 3);
    }
}
