//! Minimal CLI-flag parsing shared by the experiment binaries.

/// Run size of an experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSize {
    /// Few images / coarse sweeps; finishes in seconds to a couple of
    /// minutes.
    Quick,
    /// The defaults used for `EXPERIMENTS.md`.
    Standard,
    /// More images for tighter statistics.
    Full,
}

impl RunSize {
    /// Parses `--quick` / `--full` from `std::env::args` (default
    /// [`RunSize::Standard`]).
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            RunSize::Quick
        } else if args.iter().any(|a| a == "--full") {
            RunSize::Full
        } else {
            RunSize::Standard
        }
    }

    /// Picks one of three values by run size.
    pub fn pick<T: Copy>(&self, quick: T, standard: T, full: T) -> T {
        match self {
            RunSize::Quick => quick,
            RunSize::Standard => standard,
            RunSize::Full => full,
        }
    }
}

/// Parsed `--name value` / `--name=value` flags (plus the bare `--quick`
/// / `--full` run-size switches, which take no value).
#[derive(Debug, Clone, Default)]
pub struct Flags {
    args: Vec<String>,
}

impl Flags {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Self { args: std::env::args().skip(1).collect() }
    }

    /// Builds from an explicit argument list (tests).
    pub fn from_args<S: Into<String>, I: IntoIterator<Item = S>>(args: I) -> Self {
        Self { args: args.into_iter().map(Into::into).collect() }
    }

    /// The run size implied by `--quick` / `--full` (default standard).
    pub fn run_size(&self) -> RunSize {
        if self.args.iter().any(|a| a == "--quick") {
            RunSize::Quick
        } else if self.args.iter().any(|a| a == "--full") {
            RunSize::Full
        } else {
            RunSize::Standard
        }
    }

    /// The raw value of `--name value` or `--name=value`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        let prefix = format!("--{name}=");
        for (i, arg) in self.args.iter().enumerate() {
            if let Some(v) = arg.strip_prefix(&prefix) {
                return Some(v);
            }
            if *arg == flag {
                return self.args.get(i + 1).map(String::as_str);
            }
        }
        None
    }

    /// Parses the value of `--name`, if present.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value does not parse —
    /// experiment binaries fail loudly on bad invocations.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.value_of(name).map(|v| match v.parse() {
            Ok(value) => value,
            Err(_) => panic!("invalid value {v:?} for --{name}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_size() {
        assert_eq!(RunSize::Quick.pick(1, 2, 3), 1);
        assert_eq!(RunSize::Standard.pick(1, 2, 3), 2);
        assert_eq!(RunSize::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn flags_parse_both_spellings() {
        let flags = Flags::from_args(["--width", "640", "--k=4", "--quick", "--mode", "keyed"]);
        assert_eq!(flags.value_of("width"), Some("640"));
        assert_eq!(flags.parsed::<u32>("width"), Some(640));
        assert_eq!(flags.parsed::<u32>("k"), Some(4));
        assert_eq!(flags.value_of("mode"), Some("keyed"));
        assert_eq!(flags.value_of("height"), None);
        assert_eq!(flags.run_size(), RunSize::Quick);
        assert_eq!(Flags::from_args(["--full"]).run_size(), RunSize::Full);
        assert_eq!(Flags::default().run_size(), RunSize::Standard);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn flags_reject_bad_values() {
        let _ = Flags::from_args(["--width", "lots"]).parsed::<u32>("width");
    }
}
