//! CLI contract of the `bench_compare` gate: a malformed baseline is a
//! configuration error — one diagnostic line on stderr and exit code 2
//! — never a panic with a backtrace, and never a silent pass.
//!
//! Regressions exit 1 and a healthy run exits 0, so CI can tell "the
//! code got slower" from "the committed baseline is broken" without
//! parsing output.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Runs the compiled gate against `dir` with every baseline flag
/// pointed inside it, so only the fixtures written by the test exist.
fn run_in(dir: &std::path::Path) -> Output {
    let path = |name: &str| dir.join(name).display().to_string();
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .args([
            "--baseline",
            &path("BENCH_pipeline.json"),
            "--temporal-baseline",
            &path("BENCH_temporal.json"),
            "--scenario-dir",
            &path("scenarios"),
            "--serve-baseline",
            &path("BENCH_serve.json"),
            "--chaos-baseline",
            &path("BENCH_chaos.json"),
            "--recover-baseline",
            &path("BENCH_recover.json"),
            "--history",
            &path("BENCH_history.json"),
            "--quick",
        ])
        .output()
        .expect("bench_compare binary runs")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_compare_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is writable");
    dir
}

fn assert_clean_config_error(output: &Output, expect_in_stderr: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "a malformed baseline must exit 2, got {:?}; stderr: {stderr}",
        output.status.code()
    );
    assert!(
        stderr.contains("bench_compare: error:"),
        "stderr must carry the diagnostic prefix, got: {stderr}"
    );
    assert!(stderr.contains(expect_in_stderr), "stderr must name the problem, got: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "a malformed baseline must not panic with a backtrace, got: {stderr}"
    );
    assert!(!stderr.contains("RUST_BACKTRACE"), "no backtrace hint expected, got: {stderr}");
}

#[test]
fn a_truncated_baseline_exits_two_with_a_diagnostic_not_a_panic() {
    let dir = scratch_dir("truncated");
    // A baseline chopped mid-file: syntactically broken, no gated
    // fields survive.
    std::fs::write(
        dir.join("BENCH_pipeline.json"),
        "{\n  \"bench\": \"pipeline_stages\",\n  \"array\": \"64x4",
    )
    .expect("fixture is writable");
    let output = run_in(&dir);
    assert_clean_config_error(&output, "end_to_end_ms_mean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_garbled_array_field_exits_two_with_a_diagnostic() {
    let dir = scratch_dir("garbled");
    // Parses far enough to find the mean, then dies on a corrupt
    // geometry — the error must name the field, not unwind.
    std::fs::write(
        dir.join("BENCH_pipeline.json"),
        "{\n  \"end_to_end_ms_mean\": 4.2,\n  \"array\": \"not-a-size\"\n}\n",
    )
    .expect("fixture is writable");
    let output = run_in(&dir);
    assert_clean_config_error(&output, "not-a-size");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_missing_baseline_is_a_config_error_not_a_skip() {
    // The primary baseline is required — pointing the gate at an empty
    // directory must fail loudly (the optional layers skip instead).
    let dir = scratch_dir("missing");
    let output = run_in(&dir);
    assert_clean_config_error(&output, "cannot read baseline");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_recovery_baseline_exits_two_before_measuring() {
    // A healthy primary baseline, but a recovery baseline whose tail —
    // including `replay_budget_frames` — was truncated away: the
    // recovery gate must refuse it rather than measure against garbage.
    let dir = scratch_dir("recover");
    std::fs::write(
        dir.join("BENCH_pipeline.json"),
        "{\n  \"end_to_end_ms_mean\": 4.2,\n  \"array\": \"64x48\",\n  \"pooling_k\": 2,\n  \
         \"frames\": 5\n}\n",
    )
    .expect("fixture is writable");
    std::fs::write(
        dir.join("BENCH_recover.json"),
        "{\n  \"bench\": \"recover_stages\",\n  \"array\": \"64x48\",\n  \"sessions\": 4",
    )
    .expect("fixture is writable");
    let output = run_in(&dir);
    assert_clean_config_error(&output, "replay_budget_frames");
    let _ = std::fs::remove_dir_all(&dir);
}
