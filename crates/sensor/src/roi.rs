//! Selective ROI readout: the stage-2 path.
//!
//! After the stage-1 model has located objects on the pooled image, the
//! processor sends box coordinates back to the sensor (`j · 4` words — a
//! negligible transfer) and the sensor's address encoder converts *only*
//! the pixels inside those boxes, at full resolution.
//!
//! Accounting subtlety reproduced from the paper: when boxes overlap, the
//! encoder converts each physical pixel **once** (conversions follow the
//! **union** of the boxes) but each box is shipped to the processor as its
//! own packet (transfer follows the **sum** of box areas). This is what
//! makes the paper's Fig. 7 transfer shares and Fig. 8 stage-2 energies
//! consistent with each other.

use hirise_imaging::rect::{sum_area, union_area, union_area_with_scratch, UnionScratch};
use hirise_imaging::{FramePool, Rect, RgbImage};
use rand::distributions::NormalSampler;
use rand::rngs::KeyedRng;
use rand::Rng;

use crate::adc::Adc;
use crate::array::PixelArray;
use crate::noise::{self, domain};
use crate::pooling::gaussian;
use crate::sensor::ReadoutStats;
use crate::{Result, SensorError};

/// Number of 16-bit words used to encode one bounding box (x, y, w, h) in
/// the processor→sensor direction, per the paper's `j · (4 × Words)` term.
pub const WORDS_PER_BOX: u64 = 4;

/// Bits per coordinate word.
pub const WORD_BITS: u64 = 16;

fn check_roi(array: &PixelArray, rect: Rect) -> Result<()> {
    if rect.is_degenerate() || !rect.fits_within(array.width(), array.height()) {
        return Err(SensorError::RoiOutOfBounds {
            rect: (rect.x, rect.y, rect.w, rect.h),
            width: array.width(),
            height: array.height(),
        });
    }
    Ok(())
}

/// Converts the sub-pixels of one ROI through `adc`, returning the digital
/// image (unit range) without accounting (see [`read_rois`] for stats).
fn convert_roi<R: Rng + ?Sized>(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    rng: &mut R,
) -> RgbImage {
    let mut out = RgbImage::new(rect.w, rect.h);
    convert_roi_into(array, rect, adc, rng, &mut out);
    out
}

/// Digitises one ROI into `out` (reshaped to the rect, reusing its
/// buffers) without accounting — the in-place workhorse behind
/// [`read_roi`] and [`read_rois_into`]. Draws from `rng` in the same
/// order as the allocating path, so pixel values are bit-identical.
pub fn convert_roi_into<R: Rng + ?Sized>(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    rng: &mut R,
    out: &mut RgbImage,
) {
    let params = array.params();
    let read_noise = params.read_noise;
    let (x0, w) = (rect.x as usize, rect.w as usize);
    out.reshape_for_overwrite(rect.w, rect.h);
    for (ch, plane) in out.planes_mut().into_iter().enumerate() {
        let src = array.plane(ch);
        // Paired row slices; conversion order (and the noise stream)
        // matches the per-pixel loop exactly.
        for (dy, dst_row) in plane.rows_mut().enumerate() {
            let src_row = &src.row(rect.y + dy as u32)[x0..x0 + w];
            for (&sv, o) in src_row.iter().zip(dst_row.iter_mut()) {
                let mut v = sv as f64;
                if read_noise > 0.0 {
                    v += read_noise * gaussian(rng);
                }
                let code = adc.convert(v, rng);
                *o = adc.code_to_unit(code);
            }
        }
    }
}

/// Position-keyed digitisation of one ROI: every sub-pixel's noise is a
/// pure function of its **absolute** array coordinates (and the per-
/// readout key), so the crop's values do not depend on which other boxes
/// were requested, on readout order, or on the box offsets — overlapping
/// boxes read in one operation see identical pixel values, mirroring the
/// paper's convert-the-union-once address encoder.
pub(crate) fn convert_roi_keyed_into(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    key: u64,
    sampler: &NormalSampler,
    out: &mut RgbImage,
) {
    let params = array.params();
    let read_noise = params.read_noise;
    let adc_sigma = adc.noise_sigma();
    let sites = array.width() as u64 * array.height() as u64;
    let aw = array.width() as u64;
    let (x0, w) = (rect.x as usize, rect.w as usize);
    out.reshape_for_overwrite(rect.w, rect.h);
    for (ch, plane) in out.planes_mut().into_iter().enumerate() {
        let src = array.plane(ch);
        let ch_base = ch as u64 * sites;
        for (dy, dst_row) in plane.rows_mut().enumerate() {
            let y = rect.y + dy as u32;
            let src_row = &src.row(y)[x0..x0 + w];
            let row_base = ch_base + y as u64 * aw + rect.x as u64;
            for (dx, (&sv, o)) in src_row.iter().zip(dst_row.iter_mut()).enumerate() {
                let mut rng =
                    KeyedRng::for_stream(key, noise::stream(domain::ROI, row_base + dx as u64));
                let mut v = sv as f64;
                if read_noise > 0.0 {
                    v += read_noise * sampler.sample(&mut rng);
                }
                let g = if adc_sigma > 0.0 { sampler.sample(&mut rng) } else { 0.0 };
                *o = adc.code_to_unit(adc.convert_with_noise(v, g));
            }
        }
    }
}

/// Keyed counterpart of [`read_roi`]; accounting is identical.
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when the rectangle leaves the array.
pub(crate) fn read_roi_keyed(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    key: u64,
) -> Result<(RgbImage, ReadoutStats)> {
    check_roi(array, rect)?;
    let sampler = NormalSampler::new();
    let mut img = RgbImage::new(rect.w, rect.h);
    convert_roi_keyed_into(array, rect, adc, key, &sampler, &mut img);
    let area = rect.area();
    let stats = ReadoutStats {
        conversions: 3 * area,
        transferred_bits: 3 * area * adc.bits() as u64,
        box_words_bits: WORDS_PER_BOX * WORD_BITS,
    };
    Ok((img, stats))
}

/// Keyed counterpart of [`read_rois`]: one key covers the whole batch,
/// so overlapping boxes agree bit-for-bit on their shared pixels.
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when any rectangle leaves the array.
pub(crate) fn read_rois_keyed(
    array: &PixelArray,
    rects: &[Rect],
    adc: &Adc,
    key: u64,
) -> Result<(Vec<RgbImage>, ReadoutStats)> {
    for &r in rects {
        check_roi(array, r)?;
    }
    let sampler = NormalSampler::new();
    let images: Vec<RgbImage> = rects
        .iter()
        .map(|&r| {
            let mut img = RgbImage::new(r.w, r.h);
            convert_roi_keyed_into(array, r, adc, key, &sampler, &mut img);
            img
        })
        .collect();
    let stats = ReadoutStats {
        conversions: 3 * union_area(rects),
        transferred_bits: 3 * sum_area(rects) * adc.bits() as u64,
        box_words_bits: rects.len() as u64 * WORDS_PER_BOX * WORD_BITS,
    };
    Ok((images, stats))
}

/// Keyed counterpart of [`read_rois_into`]: same buffer-recycling
/// contract, keyed noise. Bit-identical to [`read_rois_keyed`] for the
/// same key.
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when any box leaves the array;
/// `images` is left unchanged in that case.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_rois_keyed_into(
    array: &PixelArray,
    rects: &[Rect],
    adc: &Adc,
    key: u64,
    images: &mut Vec<RgbImage>,
    pool: &mut FramePool,
    union: &mut UnionScratch,
) -> Result<ReadoutStats> {
    for &r in rects {
        check_roi(array, r)?;
    }
    let sampler = NormalSampler::new();
    while images.len() > rects.len() {
        let surplus = images.pop().expect("length checked");
        pool.release_rgb(surplus);
    }
    for (i, &rect) in rects.iter().enumerate() {
        if i == images.len() {
            // convert_roi_keyed_into overwrites every sample.
            images.push(pool.acquire_rgb_for_overwrite(rect.w, rect.h));
        }
        convert_roi_keyed_into(array, rect, adc, key, &sampler, &mut images[i]);
    }
    Ok(ReadoutStats {
        conversions: 3 * union_area_with_scratch(rects, union),
        transferred_bits: 3 * sum_area(rects) * adc.bits() as u64,
        box_words_bits: rects.len() as u64 * WORDS_PER_BOX * WORD_BITS,
    })
}

/// Reads a single full-resolution ROI.
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when the rectangle leaves the array.
pub fn read_roi<R: Rng + ?Sized>(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    rng: &mut R,
) -> Result<(RgbImage, ReadoutStats)> {
    check_roi(array, rect)?;
    let img = convert_roi(array, rect, adc, rng);
    let area = rect.area();
    let stats = ReadoutStats {
        conversions: 3 * area,
        transferred_bits: 3 * area * adc.bits() as u64,
        box_words_bits: WORDS_PER_BOX * WORD_BITS,
    };
    Ok((img, stats))
}

/// Reads a batch of ROIs.
///
/// Conversions are charged on the union of the boxes; transfer is charged
/// per box. The boxes' coordinates themselves cost
/// `j · 4 words` in the opposite direction ([`ReadoutStats::box_words_bits`]).
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when any rectangle leaves the array.
pub fn read_rois<R: Rng + ?Sized>(
    array: &PixelArray,
    rects: &[Rect],
    adc: &Adc,
    rng: &mut R,
) -> Result<(Vec<RgbImage>, ReadoutStats)> {
    for &r in rects {
        check_roi(array, r)?;
    }
    let images: Vec<RgbImage> = rects.iter().map(|&r| convert_roi(array, r, adc, rng)).collect();
    let stats = ReadoutStats {
        conversions: 3 * union_area(rects),
        transferred_bits: 3 * sum_area(rects) * adc.bits() as u64,
        box_words_bits: rects.len() as u64 * WORDS_PER_BOX * WORD_BITS,
    };
    Ok((images, stats))
}

/// In-place counterpart of [`read_rois`]: the crops replace the contents
/// of `images` (entries reused where possible; surplus entries retire to
/// `pool`, shortfalls are drawn from it) and the union sweep runs on the
/// caller's [`UnionScratch`]. After a warm-up frame or two the call
/// performs no heap allocation. Accounting and pixel values are identical
/// to [`read_rois`].
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when any box leaves the array; `images`
/// is left unchanged in that case.
pub fn read_rois_into<R: Rng + ?Sized>(
    array: &PixelArray,
    rects: &[Rect],
    adc: &Adc,
    rng: &mut R,
    images: &mut Vec<RgbImage>,
    pool: &mut FramePool,
    union: &mut UnionScratch,
) -> Result<ReadoutStats> {
    for &r in rects {
        check_roi(array, r)?;
    }
    while images.len() > rects.len() {
        let surplus = images.pop().expect("length checked");
        pool.release_rgb(surplus);
    }
    for (i, &rect) in rects.iter().enumerate() {
        if i == images.len() {
            // convert_roi_into overwrites every sample, so skip zeroing.
            images.push(pool.acquire_rgb_for_overwrite(rect.w, rect.h));
        }
        convert_roi_into(array, rect, adc, rng, &mut images[i]);
    }
    Ok(ReadoutStats {
        conversions: 3 * union_area_with_scratch(rects, union),
        transferred_bits: 3 * sum_area(rects) * adc.bits() as u64,
        box_words_bits: rects.len() as u64 * WORDS_PER_BOX * WORD_BITS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_array() -> PixelArray {
        let scene = RgbImage::from_fn(16, 16, |x, y| (x as f32 / 15.0, y as f32 / 15.0, 0.5));
        PixelArray::from_scene(&scene, PixelParams::noiseless(), 0)
    }

    #[test]
    fn roi_content_matches_scene() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let (img, _) = read_roi(&arr, Rect::new(4, 8, 4, 4), &adc, &mut rng).unwrap();
        assert_eq!(img.dimensions(), (4, 4));
        // Red channel at (0,0) of the crop corresponds to scene x=4.
        let expected = 4.0 / 15.0;
        assert!((img.r().get(0, 0) - expected).abs() < 0.01);
        let expected_g = 8.0 / 15.0;
        assert!((img.g().get(0, 0) - expected_g).abs() < 0.01);
    }

    #[test]
    fn roi_stats_single_box() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let (_, stats) = read_roi(&arr, Rect::new(0, 0, 4, 5), &adc, &mut rng).unwrap();
        assert_eq!(stats.conversions, 3 * 20);
        assert_eq!(stats.transferred_bits, 3 * 20 * 8);
        assert_eq!(stats.box_words_bits, 64);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(read_roi(&arr, Rect::new(14, 0, 4, 4), &adc, &mut rng).is_err());
        assert!(read_roi(&arr, Rect::new(0, 0, 0, 4), &adc, &mut rng).is_err());
    }

    #[test]
    fn batch_conversions_use_union_transfer_uses_sum() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        // Two overlapping 8x8 boxes offset by 4: union 96, sum 128.
        let boxes = [Rect::new(0, 0, 8, 8), Rect::new(4, 0, 8, 8)];
        let (imgs, stats) = read_rois(&arr, &boxes, &adc, &mut rng).unwrap();
        assert_eq!(imgs.len(), 2);
        assert_eq!(stats.conversions, 3 * 96);
        assert_eq!(stats.transferred_bits, 3 * 128 * 8);
        assert_eq!(stats.box_words_bits, 2 * 64);
    }

    #[test]
    fn batch_rejects_any_bad_box() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let boxes = [Rect::new(0, 0, 4, 4), Rect::new(15, 15, 4, 4)];
        assert!(read_rois(&arr, &boxes, &adc, &mut rng).is_err());
    }

    #[test]
    fn read_rois_into_matches_allocating_path() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let frames: [&[Rect]; 3] = [
            &[Rect::new(0, 0, 8, 8), Rect::new(4, 0, 8, 8), Rect::new(10, 10, 4, 4)],
            &[Rect::new(2, 2, 6, 6)],
            &[Rect::new(1, 1, 5, 9), Rect::new(8, 3, 7, 7)],
        ];
        let mut images = Vec::new();
        let mut pool = FramePool::new();
        let mut union = UnionScratch::new();
        // Growing and shrinking ROI counts recycle through the pool.
        for rects in frames {
            let mut rng_a = StdRng::seed_from_u64(5);
            let mut rng_b = StdRng::seed_from_u64(5);
            let (expected, expected_stats) = read_rois(&arr, rects, &adc, &mut rng_a).unwrap();
            let stats =
                read_rois_into(&arr, rects, &adc, &mut rng_b, &mut images, &mut pool, &mut union)
                    .unwrap();
            assert_eq!(images, expected);
            assert_eq!(stats, expected_stats);
        }
        // A failing batch must leave the previous images untouched.
        let before = images.clone();
        let mut rng = StdRng::seed_from_u64(5);
        let bad = [Rect::new(15, 15, 4, 4)];
        assert!(
            read_rois_into(&arr, &bad, &adc, &mut rng, &mut images, &mut pool, &mut union).is_err()
        );
        assert_eq!(images, before);
    }

    #[test]
    fn keyed_overlapping_rois_agree_on_shared_pixels() {
        // Keyed noise is a pure function of absolute position, so the
        // overlap of two boxes read in one operation carries identical
        // values in both crops — the union really is converted once.
        let scene = RgbImage::from_fn(16, 16, |x, y| (x as f32 / 15.0, y as f32 / 15.0, 0.5));
        let arr = PixelArray::from_scene(&scene, PixelParams::default(), 4);
        let adc = Adc::paper_default().with_noise(0.5e-3).with_inl(0.25);
        let key = crate::noise::frame_key(4, 0);
        let a = Rect::new(0, 0, 8, 8);
        let b = Rect::new(4, 2, 8, 8);
        let (imgs, _) = read_rois_keyed(&arr, &[a, b], &adc, key).unwrap();
        let mut overlapping = 0;
        for y in 2..8u32 {
            for x in 4..8u32 {
                for ch in 0..3 {
                    let va = imgs[0].planes()[ch].get(x, y);
                    let vb = imgs[1].planes()[ch].get(x - 4, y - 2);
                    assert_eq!(va, vb, "overlap differs at ({x},{y}) ch {ch}");
                }
                overlapping += 1;
            }
        }
        assert_eq!(overlapping, 24);
        // A later readout op (fresh key) is an independent realisation.
        let (again, _) = read_rois_keyed(&arr, &[a], &adc, crate::noise::frame_key(4, 1)).unwrap();
        assert_ne!(again[0], imgs[0]);
    }

    #[test]
    fn keyed_read_rois_into_matches_allocating_path() {
        let scene = RgbImage::from_fn(16, 16, |x, y| (x as f32 / 15.0, y as f32 / 15.0, 0.5));
        let arr = PixelArray::from_scene(&scene, PixelParams::default(), 4);
        let adc = Adc::paper_default().with_noise(0.5e-3);
        let frames: [&[Rect]; 3] = [
            &[Rect::new(0, 0, 8, 8), Rect::new(4, 0, 8, 8), Rect::new(10, 10, 4, 4)],
            &[Rect::new(2, 2, 6, 6)],
            &[Rect::new(1, 1, 5, 9), Rect::new(8, 3, 7, 7)],
        ];
        let mut images = Vec::new();
        let mut pool = FramePool::new();
        let mut union = UnionScratch::new();
        for (op, rects) in frames.into_iter().enumerate() {
            let key = crate::noise::frame_key(4, op as u64);
            let (expected, expected_stats) = read_rois_keyed(&arr, rects, &adc, key).unwrap();
            let stats =
                read_rois_keyed_into(&arr, rects, &adc, key, &mut images, &mut pool, &mut union)
                    .unwrap();
            assert_eq!(images, expected);
            assert_eq!(stats, expected_stats);
        }
        // A failing batch must leave the previous images untouched.
        let before = images.clone();
        let bad = [Rect::new(15, 15, 4, 4)];
        assert!(
            read_rois_keyed_into(&arr, &bad, &adc, 1, &mut images, &mut pool, &mut union).is_err()
        );
        assert_eq!(images, before);
    }

    #[test]
    fn disjoint_boxes_union_equals_sum() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let boxes = [Rect::new(0, 0, 4, 4), Rect::new(8, 8, 4, 4)];
        let (_, stats) = read_rois(&arr, &boxes, &adc, &mut rng).unwrap();
        assert_eq!(stats.conversions * 8, stats.transferred_bits);
    }
}
