//! Selective ROI readout: the stage-2 path.
//!
//! After the stage-1 model has located objects on the pooled image, the
//! processor sends box coordinates back to the sensor (`j · 4` words — a
//! negligible transfer) and the sensor's address encoder converts *only*
//! the pixels inside those boxes, at full resolution.
//!
//! Accounting subtlety reproduced from the paper: when boxes overlap, the
//! encoder converts each physical pixel **once** (conversions follow the
//! **union** of the boxes) but each box is shipped to the processor as its
//! own packet (transfer follows the **sum** of box areas). This is what
//! makes the paper's Fig. 7 transfer shares and Fig. 8 stage-2 energies
//! consistent with each other.

use hirise_imaging::rect::{sum_area, union_area};
use hirise_imaging::{Plane, Rect, RgbImage};
use rand::Rng;

use crate::adc::Adc;
use crate::array::PixelArray;
use crate::pooling::gaussian;
use crate::sensor::ReadoutStats;
use crate::{Result, SensorError};

/// Number of 16-bit words used to encode one bounding box (x, y, w, h) in
/// the processor→sensor direction, per the paper's `j · (4 × Words)` term.
pub const WORDS_PER_BOX: u64 = 4;

/// Bits per coordinate word.
pub const WORD_BITS: u64 = 16;

fn check_roi(array: &PixelArray, rect: Rect) -> Result<()> {
    if rect.is_degenerate() || !rect.fits_within(array.width(), array.height()) {
        return Err(SensorError::RoiOutOfBounds {
            rect: (rect.x, rect.y, rect.w, rect.h),
            width: array.width(),
            height: array.height(),
        });
    }
    Ok(())
}

/// Converts the sub-pixels of one ROI through `adc`, returning the digital
/// image (unit range) without accounting (see [`read_rois`] for stats).
fn convert_roi<R: Rng + ?Sized>(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    rng: &mut R,
) -> RgbImage {
    let params = array.params();
    let mut planes =
        [Plane::new(rect.w, rect.h), Plane::new(rect.w, rect.h), Plane::new(rect.w, rect.h)];
    for (ch, plane) in planes.iter_mut().enumerate() {
        for dy in 0..rect.h {
            for dx in 0..rect.w {
                let mut v = array.voltage(ch, rect.x + dx, rect.y + dy);
                if params.read_noise > 0.0 {
                    v += params.read_noise * gaussian(rng);
                }
                let code = adc.convert(v, rng);
                plane.set(dx, dy, adc.code_to_unit(code));
            }
        }
    }
    let [r, g, b] = planes;
    RgbImage::from_planes(r, g, b).expect("planes share rect dimensions")
}

/// Reads a single full-resolution ROI.
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when the rectangle leaves the array.
pub fn read_roi<R: Rng + ?Sized>(
    array: &PixelArray,
    rect: Rect,
    adc: &Adc,
    rng: &mut R,
) -> Result<(RgbImage, ReadoutStats)> {
    check_roi(array, rect)?;
    let img = convert_roi(array, rect, adc, rng);
    let area = rect.area();
    let stats = ReadoutStats {
        conversions: 3 * area,
        transferred_bits: 3 * area * adc.bits() as u64,
        box_words_bits: WORDS_PER_BOX * WORD_BITS,
    };
    Ok((img, stats))
}

/// Reads a batch of ROIs.
///
/// Conversions are charged on the union of the boxes; transfer is charged
/// per box. The boxes' coordinates themselves cost
/// `j · 4 words` in the opposite direction ([`ReadoutStats::box_words_bits`]).
///
/// # Errors
///
/// [`SensorError::RoiOutOfBounds`] when any rectangle leaves the array.
pub fn read_rois<R: Rng + ?Sized>(
    array: &PixelArray,
    rects: &[Rect],
    adc: &Adc,
    rng: &mut R,
) -> Result<(Vec<RgbImage>, ReadoutStats)> {
    for &r in rects {
        check_roi(array, r)?;
    }
    let images: Vec<RgbImage> = rects.iter().map(|&r| convert_roi(array, r, adc, rng)).collect();
    let stats = ReadoutStats {
        conversions: 3 * union_area(rects),
        transferred_bits: 3 * sum_area(rects) * adc.bits() as u64,
        box_words_bits: rects.len() as u64 * WORDS_PER_BOX * WORD_BITS,
    };
    Ok((images, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gradient_array() -> PixelArray {
        let scene = RgbImage::from_fn(16, 16, |x, y| (x as f32 / 15.0, y as f32 / 15.0, 0.5));
        PixelArray::from_scene(&scene, PixelParams::noiseless(), 0)
    }

    #[test]
    fn roi_content_matches_scene() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let (img, _) = read_roi(&arr, Rect::new(4, 8, 4, 4), &adc, &mut rng).unwrap();
        assert_eq!(img.dimensions(), (4, 4));
        // Red channel at (0,0) of the crop corresponds to scene x=4.
        let expected = 4.0 / 15.0;
        assert!((img.r().get(0, 0) - expected).abs() < 0.01);
        let expected_g = 8.0 / 15.0;
        assert!((img.g().get(0, 0) - expected_g).abs() < 0.01);
    }

    #[test]
    fn roi_stats_single_box() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let (_, stats) = read_roi(&arr, Rect::new(0, 0, 4, 5), &adc, &mut rng).unwrap();
        assert_eq!(stats.conversions, 3 * 20);
        assert_eq!(stats.transferred_bits, 3 * 20 * 8);
        assert_eq!(stats.box_words_bits, 64);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(read_roi(&arr, Rect::new(14, 0, 4, 4), &adc, &mut rng).is_err());
        assert!(read_roi(&arr, Rect::new(0, 0, 0, 4), &adc, &mut rng).is_err());
    }

    #[test]
    fn batch_conversions_use_union_transfer_uses_sum() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        // Two overlapping 8x8 boxes offset by 4: union 96, sum 128.
        let boxes = [Rect::new(0, 0, 8, 8), Rect::new(4, 0, 8, 8)];
        let (imgs, stats) = read_rois(&arr, &boxes, &adc, &mut rng).unwrap();
        assert_eq!(imgs.len(), 2);
        assert_eq!(stats.conversions, 3 * 96);
        assert_eq!(stats.transferred_bits, 3 * 128 * 8);
        assert_eq!(stats.box_words_bits, 2 * 64);
    }

    #[test]
    fn batch_rejects_any_bad_box() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let boxes = [Rect::new(0, 0, 4, 4), Rect::new(15, 15, 4, 4)];
        assert!(read_rois(&arr, &boxes, &adc, &mut rng).is_err());
    }

    #[test]
    fn disjoint_boxes_union_equals_sum() {
        let arr = gradient_array();
        let adc = Adc::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let boxes = [Rect::new(0, 0, 4, 4), Rect::new(8, 8, 4, 4)];
        let (_, stats) = read_rois(&arr, &boxes, &adc, &mut rng).unwrap();
        assert_eq!(stats.conversions * 8, stats.transferred_bits);
    }
}
