//! The top-level [`Sensor`] façade tying the pixel array, pooling circuit
//! and ADC together, with full conversion/transfer accounting.

use std::sync::Arc;

use hirise_imaging::rect::UnionScratch;
use hirise_imaging::{FramePool, GrayImage, Image, Plane, Rect, RgbImage};
use rand::distributions::NormalSampler;
use rand::rngs::{KeyedRng, StdRng};
use rand::{Rng, SeedableRng};

use crate::adc::Adc;
use crate::array::PixelArray;
use crate::noise::{self, domain, NoiseRngMode, TEMPORAL_SEED_MASK};
use crate::pixel::PixelParams;
use crate::pooling::{self, PoolingConfig};
use crate::roi;
use crate::shard::ShardPool;
use crate::Result;

/// Colour mode of the stage-1 compressed capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorMode {
    /// Three pooled channels (one averaging circuit per channel per site).
    Rgb,
    /// One pooled channel combining `k·k·3` sub-pixels — the additional
    /// 3× compression of the paper's grayscale circuit.
    Gray,
}

impl ColorMode {
    /// Channels produced by this mode.
    pub fn channels(&self) -> u32 {
        match self {
            ColorMode::Rgb => 3,
            ColorMode::Gray => 1,
        }
    }
}

impl std::fmt::Display for ColorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColorMode::Rgb => write!(f, "RGB"),
            ColorMode::Gray => write!(f, "Gray"),
        }
    }
}

/// Conversion/transfer counters produced by every readout operation.
///
/// These counters are the raw inputs of all paper metrics: `C` (ADC
/// conversions), `D` (data transfer) and, via `hirise-energy`, the energy
/// figures of Fig. 8 / Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadoutStats {
    /// ADC conversions performed.
    pub conversions: u64,
    /// Bits shipped sensor → processor.
    pub transferred_bits: u64,
    /// Bits shipped processor → sensor for box coordinates (`D1_P→S`).
    pub box_words_bits: u64,
}

impl ReadoutStats {
    /// Element-wise sum of two stats.
    pub fn merged(self, other: ReadoutStats) -> ReadoutStats {
        ReadoutStats {
            conversions: self.conversions + other.conversions,
            transferred_bits: self.transferred_bits + other.transferred_bits,
            box_words_bits: self.box_words_bits + other.box_words_bits,
        }
    }

    /// Sensor→processor transfer in bytes (rounded up).
    pub fn transferred_bytes(&self) -> u64 {
        self.transferred_bits.div_ceil(8)
    }

    /// Total transfer in both directions, bits.
    pub fn total_transfer_bits(&self) -> u64 {
        self.transferred_bits + self.box_words_bits
    }
}

/// Sensor configuration: pixel physics, pooling behaviour, ADC settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorConfig {
    /// Pixel transfer and noise parameters.
    pub pixel: PixelParams,
    /// Behavioural pooling-circuit parameters.
    pub pooling: PoolingConfig,
    /// ADC resolution in bits (the paper's `P_ADC`, 8).
    pub adc_bits: u32,
    /// ADC bow nonlinearity in LSBs.
    pub adc_inl_lsb: f64,
    /// ADC input-referred noise, volts RMS.
    pub adc_noise: f64,
    /// Seed for fixed-pattern and temporal noise.
    pub seed: u64,
    /// How noise draws are realised: position-keyed (`Keyed`, the fast
    /// order-independent default) or the legacy sequential stream
    /// (`Sequential`, bit-identical to the historical implementation).
    pub noise_rng: NoiseRngMode,
    /// Row shards for the keyed capture/pool paths: `1` = single
    /// threaded (default), `0` = one shard per available core, `n` =
    /// exactly `n`. Results are bit-identical at every setting; only
    /// `Keyed` mode uses the shards (sequential draws cannot be split).
    pub shards: u32,
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self {
            pixel: PixelParams::default(),
            pooling: PoolingConfig::default(),
            adc_bits: 8,
            adc_inl_lsb: 0.25,
            adc_noise: 0.2e-3,
            seed: 0x5EED,
            noise_rng: NoiseRngMode::default(),
            shards: 1,
        }
    }
}

impl SensorConfig {
    /// Fully deterministic, distortion-free configuration (exactness tests).
    pub fn noiseless() -> Self {
        Self {
            pixel: PixelParams::noiseless(),
            pooling: PoolingConfig::ideal(),
            adc_inl_lsb: 0.0,
            adc_noise: 0.0,
            ..Self::default()
        }
    }
}

/// A high-resolution sensor holding one captured scene.
///
/// All readout methods take `&mut self` because temporal noise advances
/// per readout — the internal sequential RNG in
/// [`NoiseRngMode::Sequential`], a readout-op counter in
/// [`NoiseRngMode::Keyed`]; captures of the same sensor are independent
/// noise realisations over the same fixed pattern in both modes.
#[derive(Debug, Clone)]
pub struct Sensor {
    array: PixelArray,
    config: SensorConfig,
    rng: StdRng,
    /// Keyed mode: base seed of the temporal-noise keys (reset on
    /// recapture, replaced by [`Sensor::reseed_temporal_noise`]).
    noise_seed: u64,
    /// Keyed mode: readout operations performed since (re)capture; each
    /// top-level readout derives its key from `(noise_seed, ops)`.
    ops: u64,
    /// Lazily spawned row-shard workers (keyed mode with `shards > 1`);
    /// shared across clones, dispatches without heap allocation.
    shard_pool: Option<Arc<ShardPool>>,
}

/// Resolved shard count for a configuration (`1` in sequential mode: an
/// ordered draw stream cannot be split).
fn config_shards(config: &SensorConfig) -> usize {
    match config.noise_rng {
        NoiseRngMode::Sequential => 1,
        NoiseRngMode::Keyed => match config.shards {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n as usize,
        },
    }
}

impl Sensor {
    /// Captures `scene` onto a new sensor.
    pub fn new(scene: RgbImage, config: SensorConfig) -> Self {
        Self::capture(&scene, config)
    }

    /// Captures `scene` onto a new sensor without taking ownership of it
    /// (the array copies the pixel data anyway). Identical to
    /// [`Sensor::new`] minus one full-frame clone.
    pub fn capture(scene: &RgbImage, config: SensorConfig) -> Self {
        // Build the shard workers before the first fill, so the initial
        // capture row-shards exactly like every recapture.
        let shards = config_shards(&config);
        let shard_pool = (shards > 1).then(|| Arc::new(ShardPool::new(shards)));
        let array = PixelArray::from_scene_with(
            scene,
            config.pixel,
            config.seed,
            config.noise_rng,
            shards,
            shard_pool.as_deref(),
        );
        let rng = StdRng::seed_from_u64(config.seed ^ TEMPORAL_SEED_MASK);
        Self {
            array,
            config,
            rng,
            noise_seed: config.seed ^ TEMPORAL_SEED_MASK,
            ops: 0,
            shard_pool,
        }
    }

    /// Recaptures a (possibly differently-sized) scene onto this sensor in
    /// place: the voltage planes are refilled reusing their buffers and the
    /// temporal-noise state is rewound, so the sensor is bit-identical to
    /// a fresh [`Sensor::capture`] of the same scene and configuration —
    /// without any steady-state heap allocation.
    pub fn recapture(&mut self, scene: &RgbImage) {
        self.ensure_shard_pool();
        let shards = self.capture_shards();
        self.array.refill_from_scene_with(
            scene,
            self.config.seed,
            self.config.noise_rng,
            shards,
            self.shard_pool.as_deref(),
        );
        self.rng = StdRng::seed_from_u64(self.config.seed ^ TEMPORAL_SEED_MASK);
        self.noise_seed = self.config.seed ^ TEMPORAL_SEED_MASK;
        self.ops = 0;
    }

    /// Shard count for keyed row-parallel paths (`1` in sequential mode:
    /// an ordered draw stream cannot be split).
    fn capture_shards(&self) -> usize {
        config_shards(&self.config)
    }

    /// Spawns the persistent shard workers on first need (keyed mode,
    /// `shards > 1`); a no-op afterwards, so the steady state allocates
    /// nothing.
    fn ensure_shard_pool(&mut self) {
        if self.shard_pool.is_none() {
            let shards = self.capture_shards();
            if shards > 1 {
                self.shard_pool = Some(Arc::new(ShardPool::new(shards)));
            }
        }
    }

    /// The key of the next readout operation (keyed mode), advancing the
    /// op counter.
    fn next_op_key(&mut self) -> u64 {
        let op = self.ops;
        self.ops += 1;
        noise::frame_key(self.noise_seed, op)
    }

    /// Array width in pixel sites.
    pub fn width(&self) -> u32 {
        self.array.width()
    }

    /// Array height in pixel sites.
    pub fn height(&self) -> u32 {
        self.array.height()
    }

    /// The underlying analog array.
    pub fn array(&self) -> &PixelArray {
        &self.array
    }

    /// The active configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    fn pixel_adc(&self) -> Adc {
        Adc::new(self.config.adc_bits, self.config.pixel.v_dark, self.config.pixel.v_sat)
            .expect("validated at construction")
            .with_inl(self.config.adc_inl_lsb)
            .with_noise(self.config.adc_noise)
    }

    fn pooled_adc(&self) -> Adc {
        let (lo, hi) =
            self.config.pooling.output_range(self.config.pixel.v_dark, self.config.pixel.v_sat);
        Adc::new(self.config.adc_bits, lo, hi)
            .expect("pooling output range is non-empty for positive gain")
            .with_inl(self.config.adc_inl_lsb)
            .with_noise(self.config.adc_noise)
    }

    fn digitise_plane_into(plane: &Plane, adc: &Adc, rng: &mut StdRng, out: &mut Plane) {
        // One flat pass over paired sample slices; conversion order (and
        // therefore the noise stream) matches the row-major per-pixel
        // loop exactly.
        out.reshape_for_overwrite(plane.width(), plane.height());
        for (&v, o) in plane.as_slice().iter().zip(out.as_mut_slice()) {
            let code = adc.convert(v as f64, rng);
            *o = adc.code_to_unit(code);
        }
    }

    /// Stage-1 capture: in-sensor pooling (+ optional grayscale fold),
    /// then conversion of only the pooled outputs.
    ///
    /// Spanning the pooled ADC over the pooling circuit's output range
    /// performs the digital re-calibration: the returned image is in
    /// normalised irradiance units, directly comparable to a digitally
    /// pooled reference.
    ///
    /// # Errors
    ///
    /// [`crate::SensorError::InvalidPooling`] when `k` does not tile the
    /// array.
    pub fn capture_pooled(&mut self, k: u32, mode: ColorMode) -> Result<(Image, ReadoutStats)> {
        let mut analog = Plane::new(1, 1);
        let mut out = Image::Gray(GrayImage::new(1, 1));
        let stats = self.capture_pooled_into(k, mode, &mut analog, &mut out)?;
        Ok((out, stats))
    }

    /// In-place variant of [`Sensor::capture_pooled`]: the analog pooling
    /// result lands in `analog` and the digitised image in `out`, both
    /// reshaped reusing their buffers. `out` is switched to the requested
    /// colour mode if it holds the other variant (the only case that
    /// allocates in steady state is that mode change). Draws from the
    /// temporal-noise stream in exactly the same order as the allocating
    /// path, so images and stats are bit-identical.
    ///
    /// # Errors
    ///
    /// [`crate::SensorError::InvalidPooling`] when `k` does not tile the
    /// array (`analog` and `out` are left untouched).
    pub fn capture_pooled_into(
        &mut self,
        k: u32,
        mode: ColorMode,
        analog: &mut Plane,
        out: &mut Image,
    ) -> Result<ReadoutStats> {
        pooling::validate_pooling(&self.array, k)?;
        let adc = self.pooled_adc();
        let bits = adc.bits() as u64;
        let keyed = match self.config.noise_rng {
            NoiseRngMode::Sequential => None,
            NoiseRngMode::Keyed => {
                self.ensure_shard_pool();
                Some((self.next_op_key(), self.capture_shards(), self.shard_pool.clone()))
            }
        };
        let count = match mode {
            ColorMode::Gray => {
                let target = match out {
                    Image::Gray(g) => g,
                    other => {
                        *other = Image::Gray(GrayImage::new(1, 1));
                        other.as_gray_mut().expect("just assigned the gray variant")
                    }
                };
                match &keyed {
                    None => {
                        pooling::pool_gray_into(
                            &self.array,
                            k,
                            &self.config.pooling,
                            &mut self.rng,
                            analog,
                        )?;
                        Self::digitise_plane_into(analog, &adc, &mut self.rng, target.plane_mut());
                    }
                    Some((key, shards, pool)) => {
                        pooling::pool_gray_keyed(
                            &self.array,
                            k,
                            &self.config.pooling,
                            &adc,
                            *key,
                            *shards,
                            pool.as_deref(),
                            analog,
                            target.plane_mut(),
                        )?;
                    }
                }
                target.plane().len() as u64
            }
            ColorMode::Rgb => {
                let target = match out {
                    Image::Rgb(c) => c,
                    other => {
                        *other = Image::Rgb(RgbImage::new(1, 1));
                        other.as_rgb_mut().expect("just assigned the rgb variant")
                    }
                };
                for (ch, plane) in target.planes_mut().into_iter().enumerate() {
                    match &keyed {
                        None => {
                            pooling::pool_channel_into(
                                &self.array,
                                ch,
                                k,
                                &self.config.pooling,
                                &mut self.rng,
                                analog,
                            )?;
                            Self::digitise_plane_into(analog, &adc, &mut self.rng, plane);
                        }
                        Some((key, shards, pool)) => {
                            pooling::pool_channel_keyed(
                                &self.array,
                                ch,
                                k,
                                &self.config.pooling,
                                &adc,
                                *key,
                                *shards,
                                pool.as_deref(),
                                analog,
                                plane,
                            )?;
                        }
                    }
                }
                target.width() as u64 * target.height() as u64 * 3
            }
        };
        Ok(ReadoutStats { conversions: count, transferred_bits: count * bits, box_words_bits: 0 })
    }

    /// Conventional full-array readout: every sub-pixel converted and
    /// transferred (the paper's baseline, `C_old = n·m·3`).
    pub fn read_full(&mut self) -> (RgbImage, ReadoutStats) {
        let adc = self.pixel_adc();
        let (w, h) = (self.array.width(), self.array.height());
        let read_noise = self.config.pixel.read_noise;
        let keyed = match self.config.noise_rng {
            NoiseRngMode::Sequential => None,
            NoiseRngMode::Keyed => Some(self.next_op_key()),
        };
        let sampler = NormalSampler::new();
        let adc_sigma = adc.noise_sigma();
        let sites = w as u64 * h as u64;
        let mut planes = Vec::with_capacity(3);
        for ch in 0..3 {
            let mut out = Plane::new(w, h);
            // Flat pass over paired slices; conversion order matches the
            // row-major per-pixel loop exactly (and is irrelevant to the
            // keyed path, whose draws are position-pure).
            match keyed {
                None => {
                    for (&src, o) in self.array.plane(ch).as_slice().iter().zip(out.as_mut_slice())
                    {
                        let mut v = src as f64;
                        if read_noise > 0.0 {
                            v += read_noise * pooling::gaussian(&mut self.rng);
                        }
                        let code = adc.convert(v, &mut self.rng);
                        *o = adc.code_to_unit(code);
                    }
                }
                Some(key) => {
                    let ch_base = ch as u64 * sites;
                    for (i, (&src, o)) in
                        self.array.plane(ch).as_slice().iter().zip(out.as_mut_slice()).enumerate()
                    {
                        let mut rng = KeyedRng::for_stream(
                            key,
                            noise::stream(domain::FULL, ch_base + i as u64),
                        );
                        let mut v = src as f64;
                        if read_noise > 0.0 {
                            v += read_noise * sampler.sample(&mut rng);
                        }
                        let g = if adc_sigma > 0.0 { sampler.sample(&mut rng) } else { 0.0 };
                        *o = adc.code_to_unit(adc.convert_with_noise(v, g));
                    }
                }
            }
            planes.push(out);
        }
        let b = planes.pop().expect("three planes");
        let g = planes.pop().expect("three planes");
        let r = planes.pop().expect("three planes");
        let img = RgbImage::from_planes(r, g, b).expect("planes share dimensions");
        let count = w as u64 * h as u64 * 3;
        let stats = ReadoutStats {
            conversions: count,
            transferred_bits: count * adc.bits() as u64,
            box_words_bits: 0,
        };
        (img, stats)
    }

    /// Stage-2 readout of a single full-resolution ROI.
    ///
    /// # Errors
    ///
    /// [`crate::SensorError::RoiOutOfBounds`] when the box leaves the array.
    pub fn read_roi(&mut self, rect: Rect) -> Result<(RgbImage, ReadoutStats)> {
        let adc = self.pixel_adc();
        match self.config.noise_rng {
            NoiseRngMode::Sequential => roi::read_roi(&self.array, rect, &adc, &mut self.rng),
            NoiseRngMode::Keyed => {
                let key = self.next_op_key();
                roi::read_roi_keyed(&self.array, rect, &adc, key)
            }
        }
    }

    /// Stage-2 readout of a batch of ROIs (conversions on the union,
    /// transfer per box; see [`crate::roi::read_rois`]).
    ///
    /// # Errors
    ///
    /// [`crate::SensorError::RoiOutOfBounds`] when any box leaves the array.
    pub fn read_rois(&mut self, rects: &[Rect]) -> Result<(Vec<RgbImage>, ReadoutStats)> {
        let adc = self.pixel_adc();
        match self.config.noise_rng {
            NoiseRngMode::Sequential => roi::read_rois(&self.array, rects, &adc, &mut self.rng),
            NoiseRngMode::Keyed => {
                let key = self.next_op_key();
                roi::read_rois_keyed(&self.array, rects, &adc, key)
            }
        }
    }

    /// In-place variant of [`Sensor::read_rois`]: crops land in `images`
    /// (recycled through `pool`) and the union sweep uses `union`; see
    /// [`crate::roi::read_rois_into`].
    ///
    /// # Errors
    ///
    /// [`crate::SensorError::RoiOutOfBounds`] when any box leaves the
    /// array.
    pub fn read_rois_into(
        &mut self,
        rects: &[Rect],
        images: &mut Vec<RgbImage>,
        pool: &mut FramePool,
        union: &mut UnionScratch,
    ) -> Result<ReadoutStats> {
        let adc = self.pixel_adc();
        match self.config.noise_rng {
            NoiseRngMode::Sequential => {
                roi::read_rois_into(&self.array, rects, &adc, &mut self.rng, images, pool, union)
            }
            NoiseRngMode::Keyed => {
                let key = self.next_op_key();
                roi::read_rois_keyed_into(&self.array, rects, &adc, key, images, pool, union)
            }
        }
    }

    /// Derives a fresh noise stream (e.g. to decorrelate captures) while
    /// keeping the fixed pattern. Applies to both modes: the sequential
    /// generator is reseeded and the keyed op keys restart from the new
    /// seed.
    pub fn reseed_temporal_noise(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.noise_seed = seed;
        self.ops = 0;
    }

    /// Draws from the sensor's internal RNG (exposed for co-simulation).
    pub fn rng_mut(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirise_imaging::{color, metrics, ops};

    fn test_scene(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            (
                0.2 + 0.6 * ((x * 13 + y * 7) % 32) as f32 / 32.0,
                0.2 + 0.6 * ((x * 5 + y * 11) % 32) as f32 / 32.0,
                0.2 + 0.6 * ((x * 3 + y * 17) % 32) as f32 / 32.0,
            )
        })
    }

    #[test]
    fn pooled_capture_dimensions_and_counts() {
        let mut s = Sensor::new(test_scene(32, 16), SensorConfig::noiseless());
        let (img, stats) = s.capture_pooled(4, ColorMode::Rgb).unwrap();
        assert_eq!((img.width(), img.height()), (8, 4));
        assert_eq!(stats.conversions, 8 * 4 * 3);
        assert_eq!(stats.transferred_bits, 8 * 4 * 3 * 8);
        let (img_g, stats_g) = s.capture_pooled(4, ColorMode::Gray).unwrap();
        assert_eq!(img_g.channels(), 1);
        assert_eq!(stats_g.conversions, 8 * 4);
    }

    #[test]
    fn in_sensor_matches_in_processor_scaling_noiselessly() {
        // The core Table-2 premise: analog pooling + calibration produces
        // (nearly) the same digital image as full readout + digital pooling.
        let scene = test_scene(32, 32);
        let cfg = SensorConfig::noiseless();
        let mut s = Sensor::new(scene.clone(), cfg);

        let (in_sensor, _) = s.capture_pooled(4, ColorMode::Rgb).unwrap();
        let (full, _) = s.read_full();
        let in_proc = ops::avg_pool_rgb(&full, 4).unwrap();

        let in_sensor_rgb = in_sensor.as_rgb().unwrap();
        for ch in 0..3 {
            let err =
                metrics::max_abs_diff(in_sensor_rgb.planes()[ch], in_proc.planes()[ch]).unwrap();
            // Both paths quantise at 8 bits; they may disagree by one code.
            assert!(err <= 1.5 / 255.0, "channel {ch} differs by {err}");
        }
    }

    #[test]
    fn gray_capture_matches_digital_gray_pool() {
        let scene = test_scene(16, 16);
        let mut s = Sensor::new(scene.clone(), SensorConfig::noiseless());
        let (in_sensor, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        let (full, _) = s.read_full();
        let gray = color::rgb_to_gray_mean(&full);
        let pooled = ops::avg_pool_gray(&gray, 2).unwrap();
        let err =
            metrics::max_abs_diff(in_sensor.as_gray().unwrap().plane(), pooled.plane()).unwrap();
        assert!(err <= 1.5 / 255.0, "gray paths differ by {err}");
    }

    #[test]
    fn full_readout_counts_match_paper_formula() {
        let mut s = Sensor::new(test_scene(32, 16), SensorConfig::noiseless());
        let (img, stats) = s.read_full();
        assert_eq!(img.dimensions(), (32, 16));
        assert_eq!(stats.conversions, 32 * 16 * 3); // C_old = n*m*3
        assert_eq!(stats.transferred_bits, 32 * 16 * 3 * 8); // D_old
    }

    #[test]
    fn roi_readout_through_sensor() {
        let mut s = Sensor::new(test_scene(32, 32), SensorConfig::noiseless());
        let (img, stats) = s.read_roi(Rect::new(8, 8, 8, 8)).unwrap();
        assert_eq!(img.dimensions(), (8, 8));
        assert_eq!(stats.conversions, 3 * 64);
        // Content check against the scene.
        let scene = test_scene(32, 32);
        let expected = scene.pixel(10, 12);
        let got = img.pixel(2, 4);
        assert!((got.0 - expected.0).abs() < 0.01);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = ReadoutStats { conversions: 1, transferred_bits: 8, box_words_bits: 64 };
        let b = ReadoutStats { conversions: 2, transferred_bits: 16, box_words_bits: 0 };
        let m = a.merged(b);
        assert_eq!(m.conversions, 3);
        assert_eq!(m.transferred_bits, 24);
        assert_eq!(m.box_words_bits, 64);
        assert_eq!(m.transferred_bytes(), 3);
        assert_eq!(m.total_transfer_bits(), 88);
    }

    #[test]
    fn noisy_capture_stays_close_to_noiseless() {
        let scene = test_scene(32, 32);
        let mut noisy = Sensor::new(scene.clone(), SensorConfig::default());
        let mut clean = Sensor::new(scene, SensorConfig::noiseless());
        let (a, _) = noisy.capture_pooled(4, ColorMode::Gray).unwrap();
        let (b, _) = clean.capture_pooled(4, ColorMode::Gray).unwrap();
        let err = metrics::mae(a.as_gray().unwrap().plane(), b.as_gray().unwrap().plane()).unwrap();
        // Noise contributions are millivolts on a 600 mV swing.
        assert!(err < 0.01, "noisy capture deviates by {err}");
    }

    #[test]
    fn recapture_is_bit_identical_to_fresh_sensor() {
        let cfg = SensorConfig::default();
        let a = test_scene(32, 16);
        let b = test_scene(16, 24);
        let mut reused = Sensor::capture(&a, cfg);
        // Cycle through differently-sized scenes on one sensor.
        for scene in [&b, &a, &b] {
            reused.recapture(scene);
            let mut fresh = Sensor::capture(scene, cfg);
            let (img_r, stats_r) = reused.capture_pooled(4, ColorMode::Rgb).unwrap();
            let (img_f, stats_f) = fresh.capture_pooled(4, ColorMode::Rgb).unwrap();
            assert_eq!(img_r, img_f);
            assert_eq!(stats_r, stats_f);
        }
    }

    #[test]
    fn capture_pooled_into_matches_allocating_capture() {
        let cfg = SensorConfig::default();
        let scene = test_scene(32, 32);
        let mut analog = Plane::new(1, 1);
        let mut out = Image::Rgb(RgbImage::new(1, 1)); // wrong variant on purpose
        let mut reused = Sensor::capture(&scene, cfg);
        // Alternate modes and pooling factors through the same buffers.
        for (k, mode) in [(4, ColorMode::Gray), (2, ColorMode::Rgb), (8, ColorMode::Gray)] {
            reused.recapture(&scene);
            let stats = reused.capture_pooled_into(k, mode, &mut analog, &mut out).unwrap();
            let mut fresh = Sensor::capture(&scene, cfg);
            let (expected, expected_stats) = fresh.capture_pooled(k, mode).unwrap();
            assert_eq!(out, expected, "k={k} mode={mode}");
            assert_eq!(stats, expected_stats);
        }
        // Invalid pooling leaves the buffers untouched.
        let before = out.clone();
        assert!(reused.capture_pooled_into(5, ColorMode::Gray, &mut analog, &mut out).is_err());
        assert_eq!(out, before);
    }

    #[test]
    fn deterministic_given_seed() {
        let scene = test_scene(16, 16);
        let cfg = SensorConfig::default();
        let mut s1 = Sensor::new(scene.clone(), cfg);
        let mut s2 = Sensor::new(scene, cfg);
        let (a, _) = s1.capture_pooled(2, ColorMode::Rgb).unwrap();
        let (b, _) = s2.capture_pooled(2, ColorMode::Rgb).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_modes_are_distinct_but_noiselessly_identical() {
        let scene = test_scene(16, 16);
        let seq = SensorConfig { noise_rng: NoiseRngMode::Sequential, ..SensorConfig::default() };
        let key = SensorConfig { noise_rng: NoiseRngMode::Keyed, ..SensorConfig::default() };
        let (a, _) = Sensor::capture(&scene, seq).capture_pooled(2, ColorMode::Rgb).unwrap();
        let (b, _) = Sensor::capture(&scene, key).capture_pooled(2, ColorMode::Rgb).unwrap();
        assert_ne!(a, b, "modes share a noise stream");
        // Without any noise the two modes run the same arithmetic.
        let seq = SensorConfig { noise_rng: NoiseRngMode::Sequential, ..SensorConfig::noiseless() };
        let key = SensorConfig { noise_rng: NoiseRngMode::Keyed, ..SensorConfig::noiseless() };
        let (a, sa) = Sensor::capture(&scene, seq).capture_pooled(2, ColorMode::Rgb).unwrap();
        let (b, sb) = Sensor::capture(&scene, key).capture_pooled(2, ColorMode::Rgb).unwrap();
        assert_eq!(a, b, "noiseless modes diverged");
        assert_eq!(sa, sb);
    }

    #[test]
    fn keyed_capture_is_shard_count_invariant() {
        // The whole frame path — capture, pooled capture, ROI readout —
        // is bit-identical at every shard count in keyed mode.
        let scene = test_scene(32, 24);
        let reference = {
            let mut s =
                Sensor::capture(&scene, SensorConfig { shards: 1, ..SensorConfig::default() });
            s.recapture(&scene);
            let pooled = s.capture_pooled(4, ColorMode::Rgb).unwrap();
            let rois = s.read_rois(&[Rect::new(2, 2, 8, 8), Rect::new(6, 4, 8, 8)]).unwrap();
            (pooled, rois)
        };
        for shards in [2u32, 4] {
            let mut s = Sensor::capture(&scene, SensorConfig { shards, ..SensorConfig::default() });
            s.recapture(&scene);
            let pooled = s.capture_pooled(4, ColorMode::Rgb).unwrap();
            let rois = s.read_rois(&[Rect::new(2, 2, 8, 8), Rect::new(6, 4, 8, 8)]).unwrap();
            assert_eq!(pooled, reference.0, "pooled capture differs at {shards} shards");
            assert_eq!(rois, reference.1, "roi readout differs at {shards} shards");
        }
    }

    #[test]
    fn keyed_readouts_advance_with_the_op_counter() {
        let scene = test_scene(16, 16);
        let mut s = Sensor::capture(&scene, SensorConfig::default());
        let (a, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        let (b, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        assert_ne!(a, b, "successive captures must be independent realisations");
        // Recapture rewinds the op counter: the next readout reproduces
        // the first.
        s.recapture(&scene);
        let (c, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        assert_eq!(a, c);
        // Reseeding moves every subsequent readout.
        s.reseed_temporal_noise(0xFEED);
        let (d, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn color_mode_display() {
        assert_eq!(ColorMode::Rgb.to_string(), "RGB");
        assert_eq!(ColorMode::Gray.to_string(), "Gray");
        assert_eq!(ColorMode::Rgb.channels(), 3);
        assert_eq!(ColorMode::Gray.channels(), 1);
    }
}
