//! A persistent row-shard worker pool for intra-frame parallelism.
//!
//! Keyed-mode noise is a pure function of position
//! ([`crate::noise::NoiseRngMode::Keyed`]), so the row bands of one
//! capture/pool/digitise pass can be computed concurrently with
//! bit-identical results at any shard count. `std::thread::scope` would
//! do that, but it allocates (thread stacks, join packets) on every
//! frame — and the steady-state frame path carries a **zero heap
//! allocations per frame** contract enforced by `tests/alloc.rs`. So the
//! pool here is persistent: threads are spawned once (lazily, on the
//! first sharded readout) and jobs are handed over through a single
//! reused slot — a mutex/condvar publish of a type-erased pointer to a
//! stack-held closure, with completion tracked by stack-held atomic
//! counters. Dispatching a job performs no heap allocation on any
//! thread.
//!
//! Safety model: a published `Job` contains raw pointers into the
//! dispatching stack frame. [`ShardPool::run`] does not return — or
//! unwind — until **every** worker has checked in on that job's
//! sequence number (a drop guard performs the wait even when the
//! calling thread's shard panics), so no worker can still observe the
//! pointers after the frame dies; a worker that wakes late sees an
//! already-processed sequence number and goes back to waiting without
//! touching the stale job. Worker-side panics are caught
//! (`catch_unwind`), flagged on the job, and re-raised as a panic on
//! the calling thread after the check-in — a panicking shard can
//! neither hang the pool nor kill a worker thread.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A type-erased shard job: workers claim shard indices from `cursor`
/// and call `run(ctx, index)` for each, then check in once on `done`
/// (setting `poisoned` first if a shard panicked on their thread).
///
/// The optional `enter`/`release` hooks belong to the bounded variant
/// ([`ShardPool::run_bounded`]): `enter` runs under the slot lock at
/// pickup (so a retraction linearizes against it), `release` after the
/// check-in — together they reference-count a heap-held job context
/// that must outlive a caller who timed out and walked away.
#[derive(Clone, Copy)]
struct Job {
    // SAFETY: callable only while the publishing call keeps `ctx` alive
    // — i.e. between the job's publication and its final check-in.
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    cursor: *const AtomicUsize,
    done: *const AtomicUsize,
    poisoned: *const AtomicBool,
    shards: usize,
    seq: u64,
    // SAFETY: callable only under the slot lock at pickup, with `ctx`
    // pointing to the job's live `BoundedCtx`.
    enter: Option<unsafe fn(*const ())>,
    // SAFETY: callable exactly once per acquired reference (enter or
    // publication), after this participant's last access to `ctx`.
    release: Option<unsafe fn(*const ())>,
}

// SAFETY: the pointers target the stack frame (or refcounted heap
// context) of the `run`/`run_bounded` call that published the job,
// which outlives every access (see the module docs).
unsafe impl Send for Job {}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
}

struct Slot {
    job: Option<Job>,
    shutdown: bool,
}

/// Blocks until every worker has checked in on the current job — run on
/// the normal exit path and, crucially, on unwind, so the job's
/// stack-held state outlives every cross-thread observer. The residual
/// wait is the tail of at most one shard per worker; spin-yield keeps
/// it cheap and allocation-free.
struct CheckinGuard<'a> {
    done: &'a AtomicUsize,
    expected: usize,
}

impl Drop for CheckinGuard<'_> {
    fn drop(&mut self) {
        while self.done.load(Ordering::Acquire) != self.expected {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }
}

/// The persistent worker pool; see the module docs.
pub struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serialises concurrent `run` calls (cloned sensors share the pool
    /// through an `Arc`); uncontended in every intended use.
    gate: Mutex<()>,
    seq: AtomicU64,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool").field("workers", &self.workers.len()).finish()
    }
}

impl ShardPool {
    /// Creates a pool sized for `parallelism`-way sharding: the calling
    /// thread participates in every job, so `parallelism - 1` workers
    /// are spawned.
    pub fn new(parallelism: usize) -> Self {
        let worker_count = parallelism.saturating_sub(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot { job: None, shutdown: false }),
            work_cv: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers, gate: Mutex::new(()), seq: AtomicU64::new(0) }
    }

    fn worker_loop(shared: &Shared) {
        let mut last_seq = 0u64;
        loop {
            let job = {
                let mut slot = shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if slot.shutdown {
                        return;
                    }
                    match slot.job {
                        Some(job) if job.seq != last_seq => {
                            // SAFETY: the job is still published (we
                            // hold the slot lock and just read it from
                            // the slot), so `ctx` is alive; entry is
                            // recorded under the lock, so a bounded
                            // caller that retracts the job under the
                            // same lock sees a final entrant count.
                            if let Some(enter) = job.enter {
                                unsafe { enter(job.ctx) }
                            }
                            break job;
                        }
                        _ => {
                            slot = shared.work_cv.wait(slot).unwrap_or_else(PoisonError::into_inner)
                        }
                    }
                }
            };
            last_seq = job.seq;
            // A panicking shard must not kill the worker (the caller
            // would spin forever on a check-in that never comes) nor
            // unwind past the check-in: catch it, flag the job as
            // poisoned, and check in regardless.
            //
            // SAFETY: this worker has not checked in yet, so the
            // publisher is still blocked in its check-in wait (or, for
            // bounded jobs, the entry above holds a context reference)
            // and every job pointer is alive.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                loop {
                    let i = (*job.cursor).fetch_add(1, Ordering::Relaxed);
                    if i >= job.shards {
                        break;
                    }
                    (job.run)(job.ctx, i);
                }
            }));
            // SAFETY: still pre-check-in for `poisoned`; `done` itself
            // is kept alive by the publisher's check-in wait spinning on
            // it (stack jobs) or by this worker's context reference
            // (bounded jobs), and `release` is this participant's last
            // touch of `ctx`, called exactly once after its final
            // access.
            unsafe {
                if outcome.is_err() {
                    (*job.poisoned).store(true, Ordering::Release);
                }
                // Check-in: `run` blocks on this count before returning,
                // which is what keeps the job's stack pointers alive for
                // the whole time any worker can observe them.
                (*job.done).fetch_add(1, Ordering::Release);
                // Bounded jobs: drop this worker's reference on the
                // heap context (possibly freeing it, if the caller
                // already timed out and left).
                if let Some(release) = job.release {
                    release(job.ctx);
                }
            }
        }
    }

    /// Runs `f(0..shards)` across the pool (the calling thread included)
    /// and returns when every shard has completed. With `shards <= 1` or
    /// an empty pool the calls happen inline on the calling thread.
    ///
    /// No heap allocation is performed on any thread.
    pub fn run<F: Fn(usize) + Sync>(&self, shards: usize, f: &F) {
        if shards <= 1 || self.workers.is_empty() {
            for i in 0..shards {
                f(i);
            }
            return;
        }
        // SAFETY(contract): `ctx` must point to a live `F` — upheld
        // because the only caller is the job published below, whose
        // `ctx` is `f` on this stack frame, kept alive by the check-in
        // wait.
        unsafe fn call<F: Fn(usize)>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` points to a live `F` per this fn's contract.
            unsafe { (*(ctx as *const F))(i) }
        }
        let _gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        let job = Job {
            run: call::<F>,
            ctx: f as *const F as *const (),
            cursor: &cursor,
            done: &done,
            poisoned: &poisoned,
            shards,
            seq,
            enter: None,
            release: None,
        };
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
            slot.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // From here until every worker checks in, the job's stack
        // pointers are observable from other threads — including while
        // this thread unwinds out of a panicking `f`. The guard performs
        // the check-in wait on the normal path *and* on unwind, so the
        // frame can never die early.
        let guard = CheckinGuard { done: &done, expected: self.workers.len() };
        // The calling thread claims shards like any worker.
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= shards {
                break;
            }
            f(i);
        }
        drop(guard);
        if poisoned.load(Ordering::Acquire) {
            panic!("a shard worker panicked during a sharded job");
        }
    }

    /// [`ShardPool::run`] with a **bounded** check-in wait: instead of
    /// blocking forever when a worker wedges inside a shard, the caller
    /// waits at most `timeout` after finishing its own share and then
    /// returns a structured [`CheckinTimeout`].
    ///
    /// Walking away from a live job is only sound if nothing the
    /// stragglers touch dies with this call — so unlike `run`, the
    /// closure is `'static` and moved into a reference-counted heap
    /// context (one allocation per call; this is a watchdog wrapper,
    /// not the zero-alloc frame path). The job is retracted before the
    /// wait, a wedged worker keeps the context alive, finishes its
    /// shard in the background, and the last participant frees it — no
    /// stack pointer ever outlives its frame.
    ///
    /// After a timeout the pool is degraded, not broken: the wedged
    /// worker rejoins the pool when (if) its shard finally returns, and
    /// until then subsequent jobs block on it as usual. A worker-side
    /// panic surfaces as a caller panic exactly as in `run` (only after
    /// a complete, in-time check-in).
    ///
    /// # Errors
    ///
    /// [`CheckinTimeout`] when not every participating worker checked
    /// in within `timeout` of the caller finishing its share.
    pub fn run_bounded<F>(
        &self,
        shards: usize,
        f: F,
        timeout: Duration,
    ) -> std::result::Result<(), CheckinTimeout>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        if shards <= 1 || self.workers.is_empty() {
            for i in 0..shards {
                f(i);
            }
            return Ok(());
        }
        let _gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let ctx = Box::into_raw(Box::new(BoundedCtx {
            f,
            cursor: AtomicUsize::new(0),
            shards_done: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            entered: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            refs: AtomicUsize::new(1),
        }));
        let seq = self.seq.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        // SAFETY: `ctx` came from `Box::into_raw` above and is freed
        // only by the last `bounded_release` (the caller holds the
        // initial reference until its own release at the end of this
        // call), so the shared borrow is valid for this whole scope.
        let ctx_ref = unsafe { &*ctx };
        let job = Job {
            run: bounded_call::<F>,
            ctx: ctx as *const (),
            cursor: &ctx_ref.cursor,
            done: &ctx_ref.done,
            poisoned: &ctx_ref.poisoned,
            shards,
            seq,
            enter: Some(bounded_enter::<F>),
            release: Some(bounded_release::<F>),
        };
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
            slot.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // The caller claims shards like any worker; a panicking shard on
        // this thread must still run the retract-and-wait epilogue.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let i = ctx_ref.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= shards {
                break;
            }
            (ctx_ref.f)(i);
            ctx_ref.shards_done.fetch_add(1, Ordering::Release);
        }));
        // Retract the job: entries happen under this lock, so after the
        // retraction the entrant count is final and the bounded wait
        // below races nobody.
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
            slot.job = None;
        }
        let start = Instant::now();
        let outcome = loop {
            let entered = ctx_ref.entered.load(Ordering::Acquire);
            if ctx_ref.done.load(Ordering::Acquire) == entered {
                break Ok(());
            }
            if start.elapsed() >= timeout {
                break Err(CheckinTimeout {
                    shards,
                    completed: ctx_ref.shards_done.load(Ordering::Acquire),
                    entered,
                    checked_in: ctx_ref.done.load(Ordering::Acquire),
                    waited: start.elapsed(),
                });
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        };
        let poisoned = outcome.is_ok() && ctx_ref.poisoned.load(Ordering::Acquire);
        // Drop the caller's reference; on a timeout the straggler now
        // owns the context and frees it at its eventual check-in.
        //
        // SAFETY: this is the caller's one release of the reference it
        // has held since `Box::into_raw`, and `ctx_ref` is not touched
        // again below it.
        unsafe { bounded_release::<F>(ctx as *const ()) };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if poisoned {
            panic!("a shard worker panicked during a sharded job");
        }
        outcome
    }
}

/// The heap-held context of one [`ShardPool::run_bounded`] job: the
/// closure plus every cross-thread counter, reference-counted so a
/// timed-out caller can leave while a wedged worker finishes.
struct BoundedCtx<F> {
    f: F,
    cursor: AtomicUsize,
    shards_done: AtomicUsize,
    done: AtomicUsize,
    entered: AtomicUsize,
    poisoned: AtomicBool,
    refs: AtomicUsize,
}

// SAFETY(contract): `ctx` must point to a live `BoundedCtx<F>` —
// upheld because every worker calling this entered the job first, and
// entry takes a context reference that `bounded_release` only drops
// after the worker's last shard.
unsafe fn bounded_call<F: Fn(usize)>(ctx: *const (), i: usize) {
    // SAFETY: `ctx` is a live `BoundedCtx<F>` per this fn's contract.
    let ctx = unsafe { &*(ctx as *const BoundedCtx<F>) };
    (ctx.f)(i);
    ctx.shards_done.fetch_add(1, Ordering::Release);
}

// SAFETY(contract): called under the slot lock while the job is still
// published, so the caller's initial reference keeps `ctx` alive.
unsafe fn bounded_enter<F>(ctx: *const ()) {
    // SAFETY: `ctx` is a live `BoundedCtx<F>` per this fn's contract.
    let ctx = unsafe { &*(ctx as *const BoundedCtx<F>) };
    ctx.refs.fetch_add(1, Ordering::Relaxed);
    ctx.entered.fetch_add(1, Ordering::Release);
}

// SAFETY(contract): called exactly once per held reference, after the
// holder's final access; the AcqRel decrement makes the last holder's
// free happen-after every other participant's accesses.
unsafe fn bounded_release<F>(ctx: *const ()) {
    let ptr = ctx as *mut BoundedCtx<F>;
    // SAFETY: our reference is still held, so `ptr` is alive for the
    // decrement.
    if unsafe { &*ptr }.refs.fetch_sub(1, Ordering::AcqRel) == 1 {
        // SAFETY: the count hit zero, so we are the last holder: nobody
        // else can touch `ptr` again, and it was created by
        // `Box::into_raw`, so reconstituting the box frees it exactly
        // once.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

/// A [`ShardPool::run_bounded`] job whose workers did not all check in
/// within the deadline — typically one wedged inside a shard. The
/// counters say how far the job got: `completed == shards` with a
/// missing check-in means the *work* finished but a worker is stuck on
/// its way out; `completed < shards` means shards are still (or forever)
/// in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckinTimeout {
    /// Shards the job was published with.
    pub shards: usize,
    /// Shards that ran to completion before the deadline.
    pub completed: usize,
    /// Workers that picked the job up.
    pub entered: usize,
    /// Workers that checked back in.
    pub checked_in: usize,
    /// How long the caller actually waited.
    pub waited: Duration,
}

impl std::fmt::Display for CheckinTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sharded job timed out after {:?}: {}/{} shards completed, \
             {}/{} entered workers checked in",
            self.waited, self.completed, self.shards, self.checked_in, self.entered
        )
    }
}

impl std::error::Error for CheckinTimeout {}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The row range of shard `index` when `rows` rows are split as evenly
/// as possible into `shards` bands (earlier bands take the remainder).
#[inline]
pub(crate) fn band(rows: usize, shards: usize, index: usize) -> (usize, usize) {
    let base = rows / shards;
    let rem = rows % shards;
    let start = index * base + index.min(rem);
    let len = base + usize::from(index < rem);
    (start, start + len)
}

/// Wraps a raw pointer so a sharded closure can carry a second disjoint
/// output buffer across threads (bands never overlap). Access goes
/// through [`SendPtr::get`] so closures capture the wrapper — not the
/// bare pointer, which edition-2021 disjoint capture would otherwise
/// pull out field-by-field, losing the `Send`/`Sync` blessing.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

// SAFETY: the wrapper only moves the pointer value across threads; all
// access goes through `get`, and every user derives disjoint per-shard
// slices from it (band disjointness, checked where the slices are made).
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — shared access hands out the raw pointer only, and
// shards never alias each other's bands.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` (a `rows × row_len` row-major buffer) into per-shard
/// row bands and runs `f(shard, first_row, band)` for each — on the pool
/// when one is supplied and `shards > 1`, inline otherwise. Because the
/// bands partition the buffer, the result is identical for every shard
/// count whenever `f` is a pure function of the absolute row positions.
pub(crate) fn shard_rows<T: Send, F: Fn(usize, usize, &mut [T]) + Sync>(
    pool: Option<&ShardPool>,
    data: &mut [T],
    rows: usize,
    row_len: usize,
    shards: usize,
    f: F,
) {
    debug_assert_eq!(data.len(), rows * row_len);
    let shards = shards.clamp(1, rows.max(1));
    match pool {
        Some(pool) if shards > 1 => {
            let base = SendPtr::new(data.as_mut_ptr());
            pool.run(shards, &|i| {
                let (r0, r1) = band(rows, shards, i);
                // SAFETY: `band` partitions `0..rows` into disjoint,
                // in-bounds row ranges (one per shard index), so each
                // shard's mutable sub-slice aliases nothing — and `data`
                // outlives `pool.run`, which does not return until every
                // shard has checked in.
                let band_slice = unsafe {
                    std::slice::from_raw_parts_mut(
                        base.get().add(r0 * row_len),
                        (r1 - r0) * row_len,
                    )
                };
                f(i, r0, band_slice);
            });
        }
        _ => {
            for i in 0..shards {
                let (r0, r1) = band(rows, shards, i);
                f(i, r0, &mut data[r0 * row_len..r1 * row_len]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_partitions_rows() {
        for rows in [1usize, 2, 5, 7, 480] {
            for shards in [1usize, 2, 3, 4, 7] {
                let mut covered = 0;
                for i in 0..shards.min(rows) {
                    let (a, b) = band(rows, shards.min(rows), i);
                    assert_eq!(a, covered, "rows={rows} shards={shards} band {i}");
                    assert!(b > a);
                    covered = b;
                }
                assert_eq!(covered, rows, "rows={rows} shards={shards}");
            }
        }
    }

    #[test]
    fn pool_runs_every_shard_exactly_once() {
        let pool = ShardPool::new(3);
        for shards in [1usize, 2, 4, 9] {
            let hits: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            pool.run(shards, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "shard {i} of {shards}");
            }
        }
    }

    #[test]
    fn shard_rows_is_shard_count_invariant() {
        let rows = 13usize;
        let row_len = 7usize;
        let reference: Vec<u32> = (0..rows * row_len).map(|i| (i * i) as u32).collect();
        let pool = ShardPool::new(4);
        for (use_pool, shards) in [(false, 1), (false, 3), (true, 2), (true, 4), (true, 13)] {
            let mut data = vec![0u32; rows * row_len];
            shard_rows(
                use_pool.then_some(&pool),
                &mut data,
                rows,
                row_len,
                shards,
                |_, first_row, band| {
                    for (dy, row) in band.chunks_exact_mut(row_len).enumerate() {
                        let y = first_row + dy;
                        for (x, v) in row.iter_mut().enumerate() {
                            let i = y * row_len + x;
                            *v = (i * i) as u32;
                        }
                    }
                },
            );
            assert_eq!(data, reference, "pool={use_pool} shards={shards}");
        }
    }

    #[test]
    fn pool_survives_a_panicking_shard() {
        // Whichever thread draws the poisoned shard, the run must panic
        // on the caller (never hang, never kill a worker) and leave the
        // pool fully usable.
        let pool = ShardPool::new(3);
        for round in 0..3 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(4, &|i| {
                    if i == 2 {
                        panic!("boom in round {round}");
                    }
                });
            }));
            assert!(outcome.is_err(), "round {round}: panic did not propagate");
            let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
            pool.run(5, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} shard {i}");
            }
        }
    }

    #[test]
    fn panicking_capture_raises_once_and_the_next_capture_is_bit_identical() {
        // Capture-shaped sharded job: row bands written through
        // `shard_rows`, several bands poisoned at once. The panic must
        // be caught on the worker side, flagged, and re-raised on the
        // caller exactly once per run (never once per poisoned band,
        // never a deadlock) — and the very next capture on the same
        // pool must be bit-identical to an unfaulted one.
        let rows = 16usize;
        let row_len = 9usize;
        let reference: Vec<u32> = (0..rows * row_len).map(|i| (i * 3 + 1) as u32).collect();
        let fill = |first_row: usize, band: &mut [u32]| {
            for (dy, row) in band.chunks_exact_mut(row_len).enumerate() {
                let y = first_row + dy;
                for (x, v) in row.iter_mut().enumerate() {
                    *v = ((y * row_len + x) * 3 + 1) as u32;
                }
            }
        };
        let pool = ShardPool::new(4);
        for round in 0..3 {
            let mut data = vec![0u32; rows * row_len];
            let escapes = AtomicUsize::new(0);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shard_rows(Some(&pool), &mut data, rows, row_len, 8, |s, first_row, band| {
                    if s % 2 == 0 {
                        escapes.fetch_add(1, Ordering::Relaxed);
                        panic!("poisoned band {s} in round {round}");
                    }
                    fill(first_row, band);
                });
            }));
            assert!(outcome.is_err(), "round {round}: the poisoned capture must panic");
            assert!(
                escapes.load(Ordering::Relaxed) >= 2,
                "round {round}: several bands must actually poison for the test to bite"
            );
            // One faulted run, one escaped panic — the next capture sees
            // a clean pool and reproduces the reference bit for bit.
            let mut clean = vec![0u32; rows * row_len];
            shard_rows(Some(&pool), &mut clean, rows, row_len, 8, |_, first_row, band| {
                fill(first_row, band);
            });
            assert_eq!(clean, reference, "round {round}: capture after a fault diverged");
        }
    }

    #[test]
    fn bounded_run_completes_within_a_generous_deadline() {
        let pool = ShardPool::new(3);
        for round in 0..2 {
            let hits: Arc<Vec<AtomicUsize>> =
                Arc::new((0..9).map(|_| AtomicUsize::new(0)).collect());
            let seen = Arc::clone(&hits);
            pool.run_bounded(
                9,
                move |i| {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                },
                Duration::from_secs(30),
            )
            .unwrap();
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} shard {i}");
            }
        }
    }

    #[test]
    fn bounded_run_times_out_on_a_wedged_worker_then_the_pool_recovers() {
        // One worker (parallelism 2). Every shard executed *off* the
        // calling thread wedges for 300 ms; the caller's first shard
        // spins until the worker has provably taken one, so exactly one
        // wedge is in flight when the 25 ms check-in deadline expires.
        let pool = ShardPool::new(2);
        let caller = std::thread::current().id();
        let worker_started = Arc::new(AtomicBool::new(false));
        let started = Arc::clone(&worker_started);
        let error = pool
            .run_bounded(
                8,
                move |_| {
                    if std::thread::current().id() == caller {
                        while !started.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    } else {
                        started.store(true, Ordering::Release);
                        std::thread::sleep(Duration::from_millis(300));
                    }
                },
                Duration::from_millis(25),
            )
            .expect_err("a wedged worker must surface as a structured timeout");
        assert_eq!(error.shards, 8);
        assert_eq!(error.entered, 1, "the one worker entered the job");
        assert_eq!(error.checked_in, 0, "and is still wedged in its shard");
        assert!(error.completed < error.shards, "the wedged shards cannot have completed");
        assert!(error.waited >= Duration::from_millis(25));
        let text = error.to_string();
        assert!(text.contains("timed out") && text.contains("0/1"), "unhelpful error: {text}");
        // Degraded, not broken: once the wedge clears, the same pool
        // serves the next bounded job cleanly.
        let hits = Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let seen = Arc::clone(&hits);
        pool.run_bounded(
            4,
            move |i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
            },
            Duration::from_secs(30),
        )
        .unwrap();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "post-recovery shard {i}");
        }
    }

    #[test]
    fn bounded_run_stays_inline_on_small_jobs_and_empty_pools() {
        for pool in [ShardPool::new(1), ShardPool::new(4)] {
            let hits = Arc::new(AtomicUsize::new(0));
            let seen = Arc::clone(&hits);
            pool.run_bounded(
                1,
                move |_| {
                    seen.fetch_add(1, Ordering::Relaxed);
                },
                Duration::from_nanos(1),
            )
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_parallelism_pool_stays_inline() {
        let pool = ShardPool::new(1);
        assert_eq!(pool.workers.len(), 0);
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
