//! In-sensor analog pooling, behaviourally.
//!
//! Each pooled output site corresponds to one instance of the Fig.-4
//! averaging circuit: `k·k` sub-pixels of one channel (RGB mode) or
//! `k·k·3` sub-pixels (gray mode) tied together through `N·R` legs. The
//! transfer applied here is the line fitted from the transistor-level
//! simulation (`hirise_analog::behavior`), plus
//!
//! * a bow-shaped residual bounded by the fit's `max_residual` — the
//!   circuit's systematic nonlinearity,
//! * thermal noise at the shared node,
//! * the source followers' read noise, attenuated by `1/√N` through the
//!   averaging.

use hirise_imaging::Plane;
use rand::distributions::NormalSampler;
use rand::rngs::KeyedRng;
use rand::Rng;

use crate::adc::Adc;
use crate::array::PixelArray;
use crate::noise::{self, domain};
use crate::shard::{shard_rows, SendPtr, ShardPool};
use crate::{Result, SensorError};

/// Standard Gaussian sample via Box–Muller — the retained sequential
/// reference (`NoiseRngMode::Sequential` draws exclusively through this,
/// keeping legacy noise streams bit-identical; the keyed path uses the
/// Ziggurat sampler instead).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Behavioural parameters of the analog pooling circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolingConfig {
    /// Linear gain from mean pixel voltage to the `avg` node.
    pub gain: f64,
    /// Output offset, volts.
    pub offset: f64,
    /// Thermal noise at the shared node, volts RMS.
    pub noise_sigma: f64,
    /// Peak systematic nonlinearity (bow over the input range), volts.
    pub nonlinearity: f64,
}

impl Default for PoolingConfig {
    /// Constants extracted from the 12-input transistor-level fit; an
    /// integration test re-derives them from `hirise-analog` to prevent
    /// drift.
    fn default() -> Self {
        Self {
            gain: hirise_analog::behavior::calibrated::GAIN_12,
            offset: hirise_analog::behavior::calibrated::OFFSET_12,
            noise_sigma: 0.3e-3,
            nonlinearity: hirise_analog::behavior::calibrated::MAX_RESIDUAL_12,
        }
    }
}

impl PoolingConfig {
    /// Ideal circuit: exact averaging, no noise, no nonlinearity. The
    /// output still passes through the linear gain/offset so the readout
    /// calibration path is exercised.
    pub fn ideal() -> Self {
        Self { noise_sigma: 0.0, nonlinearity: 0.0, ..Self::default() }
    }

    /// Re-fits the behavioural constants from the transistor-level circuit
    /// with `n` inputs (slower; used by ablation benches).
    ///
    /// # Errors
    ///
    /// Propagates analog-solver failures as [`SensorError::InvalidConfig`].
    pub fn fit_from_analog(n: usize, range: (f64, f64)) -> Result<Self> {
        let circuit = hirise_analog::pooling::PoolingCircuit::builder(n).build().map_err(|_| {
            SensorError::InvalidConfig { parameter: "pooling inputs", value: n as f64 }
        })?;
        let fit =
            hirise_analog::behavior::PoolingBehavior::fit(&circuit, range, 9).map_err(|_| {
                SensorError::InvalidConfig { parameter: "pooling fit", value: n as f64 }
            })?;
        Ok(Self {
            gain: fit.gain,
            offset: fit.offset,
            noise_sigma: 0.3e-3,
            nonlinearity: fit.max_residual,
        })
    }

    /// Forward transfer for a mean pixel voltage, including the systematic
    /// bow (deterministic part only).
    pub fn transfer(&self, mean_v: f64, v_dark: f64, v_sat: f64) -> f64 {
        let t = ((mean_v - v_dark) / (v_sat - v_dark)).clamp(0.0, 1.0);
        self.gain * mean_v + self.offset + self.nonlinearity * (std::f64::consts::PI * t).sin()
    }

    /// Output voltage the circuit produces for the darkest/brightest mean
    /// input — the range the pooled-readout ADC is spanned over.
    pub fn output_range(&self, v_dark: f64, v_sat: f64) -> (f64, f64) {
        (self.gain * v_dark + self.offset, self.gain * v_sat + self.offset)
    }
}

/// Checks that `k` tiles the array.
pub(crate) fn validate_pooling(array: &PixelArray, k: u32) -> Result<()> {
    if k == 0 || !array.width().is_multiple_of(k) || !array.height().is_multiple_of(k) {
        return Err(SensorError::InvalidPooling {
            k,
            width: array.width(),
            height: array.height(),
        });
    }
    Ok(())
}

/// Pools one channel of the array with `k×k` sites, returning the analog
/// voltages at the `avg` nodes.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_channel<R: Rng + ?Sized>(
    array: &PixelArray,
    channel: usize,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
) -> Result<Plane> {
    validate_pooling(array, k)?;
    // Construct at the final size (one exact allocation) instead of
    // growing a 1×1 placeholder through the `_into` path.
    let mut out = Plane::new(array.width() / k, array.height() / k);
    pool_channel_into(array, channel, k, cfg, rng, &mut out)?;
    Ok(out)
}

/// In-place variant of [`pool_channel`]: writes the analog voltages into
/// `out` (reshaped to `(w/k, h/k)` reusing its buffer). Draws from `rng`
/// in exactly the same order as the allocating path, so results are
/// bit-identical.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
// lint: zero-alloc
pub fn pool_channel_into<R: Rng + ?Sized>(
    array: &PixelArray,
    channel: usize,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let params = *array.params();
    let n_inputs = (k * k) as f64;
    let read_sigma = params.read_noise / n_inputs.sqrt();
    let sigma = (cfg.noise_sigma * cfg.noise_sigma + read_sigma * read_sigma).sqrt();
    let (ow, oh) = (array.width() / k, array.height() / k);
    // Each charge-sharing site sums its k×k sub-pixels over row slices
    // (hoisted per output row) in the same sequential order as
    // `PixelArray::mean_window`, so voltages are bit-identical.
    let area = (k as u64 * k as u64) as f64;
    let plane = array.plane(channel);
    let ku = k as usize;
    out.reshape_for_overwrite(ow, oh);
    for oy in 0..oh {
        let y0 = oy * k;
        for (ox, site) in out.row_mut(oy).iter_mut().enumerate() {
            let x0 = ox * ku;
            let mut acc = 0.0f64;
            for dy in 0..k {
                for &v in &plane.row(y0 + dy)[x0..x0 + ku] {
                    acc += v as f64;
                }
            }
            let mut v = cfg.transfer(acc / area, params.v_dark, params.v_sat);
            if sigma > 0.0 {
                v += sigma * gaussian(rng);
            }
            *site = v as f32;
        }
    }
    Ok(())
}

/// Pools all three channels together (`k·k·3` inputs per site) — the
/// combined grayscale + pooling configuration.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_gray<R: Rng + ?Sized>(
    array: &PixelArray,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
) -> Result<Plane> {
    validate_pooling(array, k)?;
    let mut out = Plane::new(array.width() / k, array.height() / k);
    pool_gray_into(array, k, cfg, rng, &mut out)?;
    Ok(out)
}

/// In-place variant of [`pool_gray`]; see [`pool_channel_into`] for the
/// reuse and determinism contract.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_gray_into<R: Rng + ?Sized>(
    array: &PixelArray,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let params = *array.params();
    let n_inputs = (k * k * 3) as f64;
    let read_sigma = params.read_noise / n_inputs.sqrt();
    let sigma = (cfg.noise_sigma * cfg.noise_sigma + read_sigma * read_sigma).sqrt();
    let (ow, oh) = (array.width() / k, array.height() / k);
    // Row-sliced per-channel sums in `PixelArray::mean_window`'s order,
    // combined exactly like `PixelArray::mean_window_rgb` (per-channel
    // mean first, then the three-way average), so voltages are
    // bit-identical to the per-pixel formulation.
    let area = (k as u64 * k as u64) as f64;
    let planes = [array.plane(0), array.plane(1), array.plane(2)];
    let ku = k as usize;
    out.reshape_for_overwrite(ow, oh);
    for oy in 0..oh {
        let y0 = oy * k;
        for (ox, site) in out.row_mut(oy).iter_mut().enumerate() {
            let x0 = ox * ku;
            let mut channel_means = [0.0f64; 3];
            for (plane, mean) in planes.iter().zip(channel_means.iter_mut()) {
                let mut acc = 0.0f64;
                for dy in 0..k {
                    for &v in &plane.row(y0 + dy)[x0..x0 + ku] {
                        acc += v as f64;
                    }
                }
                *mean = acc / area;
            }
            let mean = (channel_means[0] + channel_means[1] + channel_means[2]) / 3.0;
            let mut v = cfg.transfer(mean, params.v_dark, params.v_sat);
            if sigma > 0.0 {
                v += sigma * gaussian(rng);
            }
            *site = v as f32;
        }
    }
    Ok(())
}

/// Position-keyed, fused pool + stage-1 digitise of one channel: the
/// `NoiseRngMode::Keyed` fast path. Writes the analog site voltages to
/// `analog` and the converted unit-range image to `out` in one pass.
///
/// Every site's noise comes from its own counter-based stream
/// (`(key, POOL-domain + channel, site index)`: one pooling draw, then
/// one ADC draw), so the result is a pure function of position — the row
/// bands can be computed on any shard layout with bit-identical output.
/// The deterministic part (site sums, transfer, quantisation) replicates
/// the sequential kernels' operation order exactly.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pool_channel_keyed(
    array: &PixelArray,
    channel: usize,
    k: u32,
    cfg: &PoolingConfig,
    adc: &Adc,
    key: u64,
    shards: usize,
    pool: Option<&ShardPool>,
    analog: &mut Plane,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let sigma = combined_sigma(cfg, array.params().read_noise, (k * k) as f64);
    let area = (k as u64 * k as u64) as f64;
    let plane = array.plane(channel);
    let ku = k as usize;
    pool_keyed_fused(
        array,
        k,
        sigma,
        cfg,
        adc,
        key,
        domain::POOL + channel as u64,
        shards,
        pool,
        analog,
        out,
        |y0, x0| {
            let mut acc = 0.0f64;
            for dy in 0..ku {
                for &v in &plane.row((y0 + dy) as u32)[x0..x0 + ku] {
                    acc += v as f64;
                }
            }
            acc / area
        },
    );
    Ok(())
}

/// Position-keyed, fused gray pool + digitise (`k·k·3` inputs per site);
/// the keyed counterpart of [`pool_gray_into`] plus conversion. See
/// [`pool_channel_keyed`] for the determinism contract.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pool_gray_keyed(
    array: &PixelArray,
    k: u32,
    cfg: &PoolingConfig,
    adc: &Adc,
    key: u64,
    shards: usize,
    pool: Option<&ShardPool>,
    analog: &mut Plane,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let sigma = combined_sigma(cfg, array.params().read_noise, (k * k * 3) as f64);
    let area = (k as u64 * k as u64) as f64;
    let planes = [array.plane(0), array.plane(1), array.plane(2)];
    let ku = k as usize;
    // Per-channel means first, then the three-way average — exactly like
    // `pool_gray_into` / `PixelArray::mean_window_rgb`.
    pool_keyed_fused(array, k, sigma, cfg, adc, key, domain::POOL, shards, pool, analog, out, {
        |y0, x0| {
            let mut channel_means = [0.0f64; 3];
            for (plane, mean) in planes.iter().zip(channel_means.iter_mut()) {
                let mut acc = 0.0f64;
                for dy in 0..ku {
                    for &v in &plane.row((y0 + dy) as u32)[x0..x0 + ku] {
                        acc += v as f64;
                    }
                }
                *mean = acc / area;
            }
            (channel_means[0] + channel_means[1] + channel_means[2]) / 3.0
        }
    });
    Ok(())
}

/// Total per-site noise sigma: circuit thermal noise plus the source
/// followers' read noise attenuated by the `n`-input averaging.
fn combined_sigma(cfg: &PoolingConfig, read_noise: f64, n_inputs: f64) -> f64 {
    let read_sigma = read_noise / n_inputs.sqrt();
    (cfg.noise_sigma * cfg.noise_sigma + read_sigma * read_sigma).sqrt()
}

/// The shared fused keyed kernel behind [`pool_channel_keyed`] and
/// [`pool_gray_keyed`]: row-sharded sweep over the pooled grid, calling
/// `site_mean(y0, x0)` for each site's mean input voltage (the only part
/// that differs between the channel and gray configurations), then
/// transfer + keyed noise + fused ADC conversion.
#[allow(clippy::too_many_arguments)]
fn pool_keyed_fused<M: Fn(usize, usize) -> f64 + Sync>(
    array: &PixelArray,
    k: u32,
    sigma: f64,
    cfg: &PoolingConfig,
    adc: &Adc,
    key: u64,
    dom: u64,
    shards: usize,
    pool: Option<&ShardPool>,
    analog: &mut Plane,
    out: &mut Plane,
    site_mean: M,
) {
    let params = *array.params();
    let (ow, oh) = (array.width() / k, array.height() / k);
    let ku = k as usize;
    let oww = ow as usize;
    analog.reshape_for_overwrite(ow, oh);
    out.reshape_for_overwrite(ow, oh);
    let sampler = NormalSampler::new();
    let adc_sigma = adc.noise_sigma();
    let out_base = SendPtr::new(out.as_mut_slice().as_mut_ptr());
    shard_rows(pool, analog.as_mut_slice(), oh as usize, oww, shards, |_, oy0, aband| {
        // SAFETY: `out` bands mirror the `analog` bands exactly — same
        // row range, same length, reshaped to identical dimensions
        // above — so they are disjoint across shards too, and `out`
        // outlives the sharded run.
        let oband =
            unsafe { std::slice::from_raw_parts_mut(out_base.get().add(oy0 * oww), aband.len()) };
        for (dy, (arow, orow)) in
            aband.chunks_exact_mut(oww).zip(oband.chunks_exact_mut(oww)).enumerate()
        {
            let oy = oy0 + dy;
            let y0 = oy * ku;
            let row_site = (oy * oww) as u64;
            for (ox, (site, o)) in arow.iter_mut().zip(orow.iter_mut()).enumerate() {
                let mut v = cfg.transfer(site_mean(y0, ox * ku), params.v_dark, params.v_sat);
                let mut rng = KeyedRng::for_stream(key, noise::stream(dom, row_site + ox as u64));
                if sigma > 0.0 {
                    v += sigma * sampler.sample(&mut rng);
                }
                let av = v as f32;
                *site = av;
                let g = if adc_sigma > 0.0 { sampler.sample(&mut rng) } else { 0.0 };
                *o = adc.code_to_unit(adc.convert_with_noise(av as f64, g));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelParams;
    use hirise_imaging::RgbImage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array(level: f32, w: u32, h: u32) -> PixelArray {
        let scene = RgbImage::from_fn(w, h, |_, _| (level, level, level));
        PixelArray::from_scene(&scene, PixelParams::noiseless(), 0)
    }

    #[test]
    fn default_config_uses_calibrated_constants() {
        let cfg = PoolingConfig::default();
        assert_eq!(cfg.gain, hirise_analog::behavior::calibrated::GAIN_12);
        assert_eq!(cfg.offset, hirise_analog::behavior::calibrated::OFFSET_12);
    }

    #[test]
    fn ideal_pooling_of_flat_field() {
        let arr = array(0.5, 8, 8);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let p = pool_channel(&arr, 0, 4, &cfg, &mut rng).unwrap();
        assert_eq!(p.dimensions(), (2, 2));
        let expected = cfg.gain * 0.6 + cfg.offset;
        for &v in p.as_slice() {
            assert!((v as f64 - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn gray_pooling_merges_channels() {
        let scene = RgbImage::from_fn(4, 4, |_, _| (0.0, 0.5, 1.0));
        let arr = PixelArray::from_scene(&scene, PixelParams::noiseless(), 0);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let p = pool_gray(&arr, 2, &cfg, &mut rng).unwrap();
        // mean irradiance 0.5 -> mean voltage 0.6
        let expected = cfg.gain * 0.6 + cfg.offset;
        for &v in p.as_slice() {
            assert!((v as f64 - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn invalid_factor_rejected() {
        let arr = array(0.5, 6, 6);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pool_channel(&arr, 0, 4, &cfg, &mut rng).is_err());
        assert!(pool_channel(&arr, 0, 0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn noise_scales_down_with_pool_size() {
        // Larger pools average more followers: the read-noise contribution
        // shrinks as 1/sqrt(N). Compare sample standard deviations.
        let params = PixelParams { read_noise: 5e-3, ..PixelParams::noiseless() };
        let scene = RgbImage::from_fn(32, 32, |_, _| (0.5, 0.5, 0.5));
        let arr = PixelArray::from_scene(&scene, params, 0);
        let cfg = PoolingConfig { noise_sigma: 0.0, nonlinearity: 0.0, ..PoolingConfig::default() };
        let mut rng = StdRng::seed_from_u64(42);
        let p2 = pool_channel(&arr, 0, 2, &cfg, &mut rng).unwrap();
        let p8 = pool_channel(&arr, 0, 8, &cfg, &mut rng).unwrap();
        let sd = |p: &Plane| {
            let m = p.mean() as f64;
            (p.as_slice().iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / p.len() as f64)
                .sqrt()
        };
        let (s2, s8) = (sd(&p2), sd(&p8));
        assert!(s8 < s2, "noise did not shrink: sd2={s2} sd8={s8}");
    }

    #[test]
    fn keyed_pool_is_shard_count_invariant() {
        // The tentpole property: with position-keyed noise, the row-
        // sharded pool is bit-identical to the single-threaded pool.
        let params = PixelParams::default();
        let scene = RgbImage::from_fn(24, 16, |x, y| (x as f32 / 24.0, y as f32 / 16.0, 0.5));
        let arr = PixelArray::from_scene(&scene, params, 3);
        let cfg = PoolingConfig::default();
        let adc = Adc::paper_default().with_inl(0.25).with_noise(0.2e-3);
        let key = crate::noise::frame_key(3, 0);
        let pool = ShardPool::new(4);
        let reference = {
            let (mut analog, mut out) = (Plane::new(1, 1), Plane::new(1, 1));
            pool_channel_keyed(&arr, 1, 2, &cfg, &adc, key, 1, None, &mut analog, &mut out)
                .unwrap();
            (analog, out)
        };
        for shards in [2usize, 4, 8] {
            let (mut analog, mut out) = (Plane::new(1, 1), Plane::new(1, 1));
            pool_channel_keyed(
                &arr,
                1,
                2,
                &cfg,
                &adc,
                key,
                shards,
                Some(&pool),
                &mut analog,
                &mut out,
            )
            .unwrap();
            assert_eq!(analog, reference.0, "analog differs at {shards} shards");
            assert_eq!(out, reference.1, "digital differs at {shards} shards");
        }
        // Gray path too.
        let gray_ref = {
            let (mut analog, mut out) = (Plane::new(1, 1), Plane::new(1, 1));
            pool_gray_keyed(&arr, 4, &cfg, &adc, key, 1, None, &mut analog, &mut out).unwrap();
            (analog, out)
        };
        let (mut analog, mut out) = (Plane::new(1, 1), Plane::new(1, 1));
        pool_gray_keyed(&arr, 4, &cfg, &adc, key, 3, Some(&pool), &mut analog, &mut out).unwrap();
        assert_eq!((analog, out), gray_ref);
    }

    #[test]
    fn keyed_pool_noiseless_matches_sequential_kernel() {
        // With every sigma at zero the keyed and sequential pools share
        // the same deterministic arithmetic, bit for bit, and the fused
        // conversion reduces to the ideal quantiser.
        let scene = RgbImage::from_fn(12, 8, |x, y| (x as f32 / 12.0, y as f32 / 8.0, 0.3));
        let arr = PixelArray::from_scene(&scene, PixelParams::noiseless(), 0);
        let cfg = PoolingConfig::ideal();
        let adc = Adc::paper_default();
        let key = crate::noise::frame_key(0, 0);
        let (mut analog_k, mut out_k) = (Plane::new(1, 1), Plane::new(1, 1));
        pool_channel_keyed(&arr, 0, 2, &cfg, &adc, key, 1, None, &mut analog_k, &mut out_k)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut analog_s = Plane::new(1, 1);
        pool_channel_into(&arr, 0, 2, &cfg, &mut rng, &mut analog_s).unwrap();
        assert_eq!(analog_k, analog_s);
        for (&a, &o) in analog_s.as_slice().iter().zip(out_k.as_slice()) {
            assert_eq!(o, adc.code_to_unit(adc.convert_ideal(a as f64)));
        }
    }

    #[test]
    fn keyed_pool_rejects_bad_factor() {
        let arr = array(0.5, 6, 6);
        let cfg = PoolingConfig::ideal();
        let adc = Adc::paper_default();
        let (mut analog, mut out) = (Plane::new(1, 1), Plane::new(1, 1));
        assert!(
            pool_channel_keyed(&arr, 0, 4, &cfg, &adc, 1, 1, None, &mut analog, &mut out).is_err()
        );
        assert!(pool_gray_keyed(&arr, 0, &cfg, &adc, 1, 1, None, &mut analog, &mut out).is_err());
    }

    #[test]
    fn transfer_is_monotone() {
        let cfg = PoolingConfig::default();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = 0.3 + 0.6 * i as f64 / 10.0;
            let out = cfg.transfer(v, 0.3, 0.9);
            assert!(out > last);
            last = out;
        }
    }

    #[test]
    fn output_range_brackets_transfers() {
        let cfg = PoolingConfig::default();
        let (lo, hi) = cfg.output_range(0.3, 0.9);
        assert!(lo < hi);
        let mid = cfg.transfer(0.6, 0.3, 0.9);
        assert!(mid > lo && mid < hi + cfg.nonlinearity);
    }

    #[test]
    fn fit_from_analog_close_to_calibrated() {
        let fitted = PoolingConfig::fit_from_analog(12, (0.3, 0.9)).unwrap();
        let cal = PoolingConfig::default();
        assert!((fitted.gain - cal.gain).abs() < 1e-3, "gain drifted: {}", fitted.gain);
        assert!((fitted.offset - cal.offset).abs() < 1e-3, "offset drifted: {}", fitted.offset);
    }
}
