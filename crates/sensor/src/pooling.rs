//! In-sensor analog pooling, behaviourally.
//!
//! Each pooled output site corresponds to one instance of the Fig.-4
//! averaging circuit: `k·k` sub-pixels of one channel (RGB mode) or
//! `k·k·3` sub-pixels (gray mode) tied together through `N·R` legs. The
//! transfer applied here is the line fitted from the transistor-level
//! simulation (`hirise_analog::behavior`), plus
//!
//! * a bow-shaped residual bounded by the fit's `max_residual` — the
//!   circuit's systematic nonlinearity,
//! * thermal noise at the shared node,
//! * the source followers' read noise, attenuated by `1/√N` through the
//!   averaging.

use hirise_imaging::Plane;
use rand::Rng;

use crate::array::PixelArray;
use crate::{Result, SensorError};

/// Standard Gaussian sample via Box–Muller.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Behavioural parameters of the analog pooling circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolingConfig {
    /// Linear gain from mean pixel voltage to the `avg` node.
    pub gain: f64,
    /// Output offset, volts.
    pub offset: f64,
    /// Thermal noise at the shared node, volts RMS.
    pub noise_sigma: f64,
    /// Peak systematic nonlinearity (bow over the input range), volts.
    pub nonlinearity: f64,
}

impl Default for PoolingConfig {
    /// Constants extracted from the 12-input transistor-level fit; an
    /// integration test re-derives them from `hirise-analog` to prevent
    /// drift.
    fn default() -> Self {
        Self {
            gain: hirise_analog::behavior::calibrated::GAIN_12,
            offset: hirise_analog::behavior::calibrated::OFFSET_12,
            noise_sigma: 0.3e-3,
            nonlinearity: hirise_analog::behavior::calibrated::MAX_RESIDUAL_12,
        }
    }
}

impl PoolingConfig {
    /// Ideal circuit: exact averaging, no noise, no nonlinearity. The
    /// output still passes through the linear gain/offset so the readout
    /// calibration path is exercised.
    pub fn ideal() -> Self {
        Self { noise_sigma: 0.0, nonlinearity: 0.0, ..Self::default() }
    }

    /// Re-fits the behavioural constants from the transistor-level circuit
    /// with `n` inputs (slower; used by ablation benches).
    ///
    /// # Errors
    ///
    /// Propagates analog-solver failures as [`SensorError::InvalidConfig`].
    pub fn fit_from_analog(n: usize, range: (f64, f64)) -> Result<Self> {
        let circuit = hirise_analog::pooling::PoolingCircuit::builder(n).build().map_err(|_| {
            SensorError::InvalidConfig { parameter: "pooling inputs", value: n as f64 }
        })?;
        let fit =
            hirise_analog::behavior::PoolingBehavior::fit(&circuit, range, 9).map_err(|_| {
                SensorError::InvalidConfig { parameter: "pooling fit", value: n as f64 }
            })?;
        Ok(Self {
            gain: fit.gain,
            offset: fit.offset,
            noise_sigma: 0.3e-3,
            nonlinearity: fit.max_residual,
        })
    }

    /// Forward transfer for a mean pixel voltage, including the systematic
    /// bow (deterministic part only).
    pub fn transfer(&self, mean_v: f64, v_dark: f64, v_sat: f64) -> f64 {
        let t = ((mean_v - v_dark) / (v_sat - v_dark)).clamp(0.0, 1.0);
        self.gain * mean_v + self.offset + self.nonlinearity * (std::f64::consts::PI * t).sin()
    }

    /// Output voltage the circuit produces for the darkest/brightest mean
    /// input — the range the pooled-readout ADC is spanned over.
    pub fn output_range(&self, v_dark: f64, v_sat: f64) -> (f64, f64) {
        (self.gain * v_dark + self.offset, self.gain * v_sat + self.offset)
    }
}

/// Checks that `k` tiles the array.
pub(crate) fn validate_pooling(array: &PixelArray, k: u32) -> Result<()> {
    if k == 0 || !array.width().is_multiple_of(k) || !array.height().is_multiple_of(k) {
        return Err(SensorError::InvalidPooling {
            k,
            width: array.width(),
            height: array.height(),
        });
    }
    Ok(())
}

/// Pools one channel of the array with `k×k` sites, returning the analog
/// voltages at the `avg` nodes.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_channel<R: Rng + ?Sized>(
    array: &PixelArray,
    channel: usize,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
) -> Result<Plane> {
    validate_pooling(array, k)?;
    // Construct at the final size (one exact allocation) instead of
    // growing a 1×1 placeholder through the `_into` path.
    let mut out = Plane::new(array.width() / k, array.height() / k);
    pool_channel_into(array, channel, k, cfg, rng, &mut out)?;
    Ok(out)
}

/// In-place variant of [`pool_channel`]: writes the analog voltages into
/// `out` (reshaped to `(w/k, h/k)` reusing its buffer). Draws from `rng`
/// in exactly the same order as the allocating path, so results are
/// bit-identical.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_channel_into<R: Rng + ?Sized>(
    array: &PixelArray,
    channel: usize,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let params = *array.params();
    let n_inputs = (k * k) as f64;
    let read_sigma = params.read_noise / n_inputs.sqrt();
    let sigma = (cfg.noise_sigma * cfg.noise_sigma + read_sigma * read_sigma).sqrt();
    let (ow, oh) = (array.width() / k, array.height() / k);
    // Each charge-sharing site sums its k×k sub-pixels over row slices
    // (hoisted per output row) in the same sequential order as
    // `PixelArray::mean_window`, so voltages are bit-identical.
    let area = (k as u64 * k as u64) as f64;
    let plane = array.plane(channel);
    let ku = k as usize;
    out.reshape_for_overwrite(ow, oh);
    for oy in 0..oh {
        let y0 = oy * k;
        for (ox, site) in out.row_mut(oy).iter_mut().enumerate() {
            let x0 = ox * ku;
            let mut acc = 0.0f64;
            for dy in 0..k {
                for &v in &plane.row(y0 + dy)[x0..x0 + ku] {
                    acc += v as f64;
                }
            }
            let mut v = cfg.transfer(acc / area, params.v_dark, params.v_sat);
            if sigma > 0.0 {
                v += sigma * gaussian(rng);
            }
            *site = v as f32;
        }
    }
    Ok(())
}

/// Pools all three channels together (`k·k·3` inputs per site) — the
/// combined grayscale + pooling configuration.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_gray<R: Rng + ?Sized>(
    array: &PixelArray,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
) -> Result<Plane> {
    validate_pooling(array, k)?;
    let mut out = Plane::new(array.width() / k, array.height() / k);
    pool_gray_into(array, k, cfg, rng, &mut out)?;
    Ok(out)
}

/// In-place variant of [`pool_gray`]; see [`pool_channel_into`] for the
/// reuse and determinism contract.
///
/// # Errors
///
/// [`SensorError::InvalidPooling`] when `k` does not tile the array.
pub fn pool_gray_into<R: Rng + ?Sized>(
    array: &PixelArray,
    k: u32,
    cfg: &PoolingConfig,
    rng: &mut R,
    out: &mut Plane,
) -> Result<()> {
    validate_pooling(array, k)?;
    let params = *array.params();
    let n_inputs = (k * k * 3) as f64;
    let read_sigma = params.read_noise / n_inputs.sqrt();
    let sigma = (cfg.noise_sigma * cfg.noise_sigma + read_sigma * read_sigma).sqrt();
    let (ow, oh) = (array.width() / k, array.height() / k);
    // Row-sliced per-channel sums in `PixelArray::mean_window`'s order,
    // combined exactly like `PixelArray::mean_window_rgb` (per-channel
    // mean first, then the three-way average), so voltages are
    // bit-identical to the per-pixel formulation.
    let area = (k as u64 * k as u64) as f64;
    let planes = [array.plane(0), array.plane(1), array.plane(2)];
    let ku = k as usize;
    out.reshape_for_overwrite(ow, oh);
    for oy in 0..oh {
        let y0 = oy * k;
        for (ox, site) in out.row_mut(oy).iter_mut().enumerate() {
            let x0 = ox * ku;
            let mut channel_means = [0.0f64; 3];
            for (plane, mean) in planes.iter().zip(channel_means.iter_mut()) {
                let mut acc = 0.0f64;
                for dy in 0..k {
                    for &v in &plane.row(y0 + dy)[x0..x0 + ku] {
                        acc += v as f64;
                    }
                }
                *mean = acc / area;
            }
            let mean = (channel_means[0] + channel_means[1] + channel_means[2]) / 3.0;
            let mut v = cfg.transfer(mean, params.v_dark, params.v_sat);
            if sigma > 0.0 {
                v += sigma * gaussian(rng);
            }
            *site = v as f32;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::PixelParams;
    use hirise_imaging::RgbImage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn array(level: f32, w: u32, h: u32) -> PixelArray {
        let scene = RgbImage::from_fn(w, h, |_, _| (level, level, level));
        PixelArray::from_scene(&scene, PixelParams::noiseless(), 0)
    }

    #[test]
    fn default_config_uses_calibrated_constants() {
        let cfg = PoolingConfig::default();
        assert_eq!(cfg.gain, hirise_analog::behavior::calibrated::GAIN_12);
        assert_eq!(cfg.offset, hirise_analog::behavior::calibrated::OFFSET_12);
    }

    #[test]
    fn ideal_pooling_of_flat_field() {
        let arr = array(0.5, 8, 8);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let p = pool_channel(&arr, 0, 4, &cfg, &mut rng).unwrap();
        assert_eq!(p.dimensions(), (2, 2));
        let expected = cfg.gain * 0.6 + cfg.offset;
        for &v in p.as_slice() {
            assert!((v as f64 - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn gray_pooling_merges_channels() {
        let scene = RgbImage::from_fn(4, 4, |_, _| (0.0, 0.5, 1.0));
        let arr = PixelArray::from_scene(&scene, PixelParams::noiseless(), 0);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        let p = pool_gray(&arr, 2, &cfg, &mut rng).unwrap();
        // mean irradiance 0.5 -> mean voltage 0.6
        let expected = cfg.gain * 0.6 + cfg.offset;
        for &v in p.as_slice() {
            assert!((v as f64 - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn invalid_factor_rejected() {
        let arr = array(0.5, 6, 6);
        let cfg = PoolingConfig::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(pool_channel(&arr, 0, 4, &cfg, &mut rng).is_err());
        assert!(pool_channel(&arr, 0, 0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn noise_scales_down_with_pool_size() {
        // Larger pools average more followers: the read-noise contribution
        // shrinks as 1/sqrt(N). Compare sample standard deviations.
        let params = PixelParams { read_noise: 5e-3, ..PixelParams::noiseless() };
        let scene = RgbImage::from_fn(32, 32, |_, _| (0.5, 0.5, 0.5));
        let arr = PixelArray::from_scene(&scene, params, 0);
        let cfg = PoolingConfig { noise_sigma: 0.0, nonlinearity: 0.0, ..PoolingConfig::default() };
        let mut rng = StdRng::seed_from_u64(42);
        let p2 = pool_channel(&arr, 0, 2, &cfg, &mut rng).unwrap();
        let p8 = pool_channel(&arr, 0, 8, &cfg, &mut rng).unwrap();
        let sd = |p: &Plane| {
            let m = p.mean() as f64;
            (p.as_slice().iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / p.len() as f64)
                .sqrt()
        };
        let (s2, s8) = (sd(&p2), sd(&p8));
        assert!(s8 < s2, "noise did not shrink: sd2={s2} sd8={s8}");
    }

    #[test]
    fn transfer_is_monotone() {
        let cfg = PoolingConfig::default();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = 0.3 + 0.6 * i as f64 / 10.0;
            let out = cfg.transfer(v, 0.3, 0.9);
            assert!(out > last);
            last = out;
        }
    }

    #[test]
    fn output_range_brackets_transfers() {
        let cfg = PoolingConfig::default();
        let (lo, hi) = cfg.output_range(0.3, 0.9);
        assert!(lo < hi);
        let mid = cfg.transfer(0.6, 0.3, 0.9);
        assert!(mid > lo && mid < hi + cfg.nonlinearity);
    }

    #[test]
    fn fit_from_analog_close_to_calibrated() {
        let fitted = PoolingConfig::fit_from_analog(12, (0.3, 0.9)).unwrap();
        let cal = PoolingConfig::default();
        assert!((fitted.gain - cal.gain).abs() < 1e-3, "gain drifted: {}", fitted.gain);
        assert!((fitted.offset - cal.offset).abs() < 1e-3, "offset drifted: {}", fitted.offset);
    }
}
