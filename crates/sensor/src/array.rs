//! The analog pixel array: scene irradiance captured as per-sub-pixel
//! voltages with fixed-pattern noise baked in.

use hirise_imaging::{Plane, Rect, RgbImage};
use rand::distributions::NormalSampler;

use crate::noise::{self, domain, NoiseRngMode};
use crate::pixel::PixelParams;
use crate::shard::{shard_rows, ShardPool};

/// Deterministic per-position Gaussian-ish mismatch (sum of four uniforms,
/// variance-corrected), so the fixed pattern is stable across captures of
/// the same array.
///
/// Takes the already-combined position seed
/// (`seed ^ (channel << 56) ^ (y << 28) ^ x`) so row loops hoist the
/// `seed ^ channel ^ y` part and only XOR in `x` per pixel.
#[inline]
fn fpn_hash(mut h: u64) -> f64 {
    let mut acc = 0.0f64;
    for _ in 0..4 {
        // splitmix64 step
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        acc += (z >> 40) as f64 / (1u64 << 24) as f64 - 0.5;
    }
    // Sum of 4 U(-0.5, 0.5) has variance 4/12; scale to unit variance.
    acc / (4.0f64 / 12.0).sqrt()
}

/// Cached scaled fixed-pattern mismatch values for one
/// `(seed, width, height, noise mode)` realisation.
///
/// The fixed pattern is a pure function of the seed and the pixel
/// position (in **both** noise modes), so recomputing it on every
/// [`PixelArray::refill_from_scene`] repeats the per-sub-pixel hash or
/// Ziggurat work per frame for values that never change. The cache
/// stores the already-scaled `σ · mismatch(…)` terms — 8 bytes per
/// sub-pixel per *active* mismatch kind (a kind whose sigma is zero gets
/// no table at all) — turning the steady-state refill into a pure
/// multiply–add pass. It is bounded ([`FpnCache::MAX_SITES`]) so
/// paper-scale arrays (2560×1920) do not pin hundreds of megabytes;
/// above the bound the mismatch terms are recomputed per refill exactly
/// as before.
#[derive(Debug, Clone, Default)]
struct FpnCache {
    key: Option<(u64, u32, u32, NoiseRngMode)>,
    /// Channel-major `3 · w · h` scaled PRNU terms (empty when
    /// `prnu_sigma == 0`).
    prnu: Vec<f64>,
    /// Channel-major `3 · w · h` scaled DSNU terms (empty when
    /// `dsnu_sigma == 0`).
    dsnu: Vec<f64>,
}

impl FpnCache {
    /// Largest `width · height` the cache covers (1 Mi sites ≈ 48 MB of
    /// `f64` tables across both kinds and all three channels).
    const MAX_SITES: usize = 1 << 20;

    /// Makes the cache hold the realisation for `(seed, w, h, mode)`
    /// under `params` (fixed per array), reusing buffer capacity; no-op
    /// when it already does.
    fn ensure(&mut self, seed: u64, w: u32, h: u32, params: &PixelParams, mode: NoiseRngMode) {
        if self.key == Some((seed, w, h, mode)) {
            return;
        }
        let sites = w as usize * h as usize;
        let need_prnu = params.prnu_sigma != 0.0;
        let need_dsnu = params.dsnu_sigma != 0.0;
        self.prnu.clear();
        self.dsnu.clear();
        if need_prnu {
            self.prnu.reserve(3 * sites);
        }
        if need_dsnu {
            self.dsnu.reserve(3 * sites);
        }
        match mode {
            NoiseRngMode::Sequential => {
                for ch in 0..3u64 {
                    for y in 0..h as u64 {
                        let row_seed = seed ^ (ch << 56) ^ (y << 28);
                        let row_seed_dsnu = (seed ^ 0xABCD) ^ (ch << 56) ^ (y << 28);
                        for x in 0..w as u64 {
                            if need_prnu {
                                self.prnu.push(params.prnu_sigma * fpn_hash(row_seed ^ x));
                            }
                            if need_dsnu {
                                self.dsnu.push(params.dsnu_sigma * fpn_hash(row_seed_dsnu ^ x));
                            }
                        }
                    }
                }
            }
            NoiseRngMode::Keyed => {
                let sampler = NormalSampler::new();
                let key = noise::fpn_key(seed);
                for site in 0..3 * sites as u64 {
                    if need_prnu {
                        let g = noise::site_normal(
                            &sampler,
                            key,
                            noise::stream(domain::FPN_PRNU, site),
                        );
                        self.prnu.push(params.prnu_sigma * g);
                    }
                    if need_dsnu {
                        let g = noise::site_normal(
                            &sampler,
                            key,
                            noise::stream(domain::FPN_DSNU, site),
                        );
                        self.dsnu.push(params.dsnu_sigma * g);
                    }
                }
            }
        }
        self.key = Some((seed, w, h, mode));
    }
}

/// A captured analog pixel array: three voltage planes (R, G, B), one value
/// per sub-pixel, with PRNU/DSNU fixed-pattern mismatch applied.
///
/// The array is the *analog domain* — nothing here has been converted or
/// transferred. All HiRISE readout paths start from this object.
#[derive(Debug, Clone)]
pub struct PixelArray {
    planes: [Plane; 3],
    params: PixelParams,
    fpn: FpnCache,
}

impl PixelArray {
    /// Captures `scene` (normalised irradiance per channel) onto the array
    /// with the legacy [`NoiseRngMode::Sequential`] fixed pattern.
    ///
    /// `seed` selects the fixed-pattern noise realisation; the same seed
    /// reproduces the same mismatch map.
    pub fn from_scene(scene: &RgbImage, params: PixelParams, seed: u64) -> Self {
        Self::from_scene_with(scene, params, seed, NoiseRngMode::Sequential, 1, None)
    }

    /// Captures `scene` under an explicit noise mode (the mode selects
    /// the fixed-pattern generator: the legacy position hash for
    /// `Sequential`, position-keyed Ziggurat Gaussians for `Keyed`),
    /// optionally row-sharding the fill like
    /// [`PixelArray::refill_from_scene_with`].
    pub(crate) fn from_scene_with(
        scene: &RgbImage,
        params: PixelParams,
        seed: u64,
        mode: NoiseRngMode,
        shards: usize,
        pool: Option<&ShardPool>,
    ) -> Self {
        let (w, h) = scene.dimensions();
        let planes = [Plane::new(w, h), Plane::new(w, h), Plane::new(w, h)];
        let mut array = Self { planes, params, fpn: FpnCache::default() };
        array.refill_from_scene_with(scene, seed, mode, shards, pool);
        array
    }

    /// Recaptures a (possibly differently-sized) scene onto this array in
    /// place, reusing the voltage-plane buffers. The pixel parameters are
    /// kept; `seed` selects the fixed-pattern realisation exactly as in
    /// [`PixelArray::from_scene`] — refilling with the same scene and seed
    /// reproduces the same voltages bit-for-bit.
    pub fn refill_from_scene(&mut self, scene: &RgbImage, seed: u64) {
        self.refill_from_scene_with(scene, seed, NoiseRngMode::Sequential, 1, None);
    }

    /// Mode- and shard-aware recapture. The fixed pattern is a pure
    /// function of `(seed, mode, position)`, so the row-sharded fill is
    /// bit-identical at every shard count in both modes; `shards`/`pool`
    /// only govern how the work is spread.
    pub(crate) fn refill_from_scene_with(
        &mut self,
        scene: &RgbImage,
        seed: u64,
        mode: NoiseRngMode,
        shards: usize,
        pool: Option<&ShardPool>,
    ) {
        let (w, h) = scene.dimensions();
        for plane in &mut self.planes {
            // `fill` overwrites every sample, so skip the zeroing pass.
            plane.reshape_for_overwrite(w, h);
        }
        let params = self.params;
        Self::fill(&mut self.planes, &mut self.fpn, scene, &params, seed, mode, shards, pool);
    }

    #[allow(clippy::too_many_arguments)]
    fn fill(
        planes: &mut [Plane; 3],
        fpn: &mut FpnCache,
        scene: &RgbImage,
        params: &PixelParams,
        seed: u64,
        mode: NoiseRngMode,
        shards: usize,
        pool: Option<&ShardPool>,
    ) {
        // The noiseless/noisy split is hoisted out of the pixel loops, and
        // every path runs over paired row slices — sharded into row bands
        // when a pool is supplied. Values are bit-identical to the
        // per-pixel formulation in every path and at every shard count:
        // the cache stores the exact `σ · mismatch(…)` products the
        // direct path would recompute, every mismatch term is a pure
        // function of the absolute position, and a zero sigma contributes
        // exactly zero either way (a `±0.0` mismatch term cannot change
        // `voltage_with_mismatch`'s output, whose partial sums are
        // non-negative).
        let (w, h) = scene.dimensions();
        let sites = w as usize * h as usize;
        let wz = w as usize;
        let need_prnu = params.prnu_sigma != 0.0;
        let need_dsnu = params.dsnu_sigma != 0.0;
        let noiseless = !need_prnu && !need_dsnu;
        let cached = !noiseless && sites <= FpnCache::MAX_SITES;
        if cached {
            fpn.ensure(seed, w, h, params, mode);
        }
        for (ch, src) in scene.planes().into_iter().enumerate() {
            let dst = &mut planes[ch];
            let src = src.as_slice();
            shard_rows(pool, dst.as_mut_slice(), h as usize, wz, shards, |_, y0, dst_band| {
                let src_band = &src[y0 * wz..y0 * wz + dst_band.len()];
                if noiseless {
                    for (&irr, out) in src_band.iter().zip(dst_band.iter_mut()) {
                        *out = params.voltage(irr) as f32;
                    }
                } else if cached {
                    let span = ch * sites + y0 * wz..ch * sites + y0 * wz + dst_band.len();
                    if need_prnu && need_dsnu {
                        let prnu_band = &fpn.prnu[span.clone()];
                        let dsnu_band = &fpn.dsnu[span];
                        for ((&irr, out), (&p, &d)) in src_band
                            .iter()
                            .zip(dst_band.iter_mut())
                            .zip(prnu_band.iter().zip(dsnu_band))
                        {
                            *out = params.voltage_with_mismatch(irr, p, d) as f32;
                        }
                    } else if need_prnu {
                        for ((&irr, out), &p) in
                            src_band.iter().zip(dst_band.iter_mut()).zip(&fpn.prnu[span])
                        {
                            *out = params.voltage_with_mismatch(irr, p, 0.0) as f32;
                        }
                    } else {
                        for ((&irr, out), &d) in
                            src_band.iter().zip(dst_band.iter_mut()).zip(&fpn.dsnu[span])
                        {
                            *out = params.voltage_with_mismatch(irr, 0.0, d) as f32;
                        }
                    }
                } else {
                    match mode {
                        NoiseRngMode::Sequential => Self::fill_band_hashed(
                            src_band, dst_band, params, seed, ch, y0, wz, need_prnu, need_dsnu,
                        ),
                        NoiseRngMode::Keyed => Self::fill_band_keyed(
                            src_band,
                            dst_band,
                            params,
                            seed,
                            ch * sites + y0 * wz,
                            need_prnu,
                            need_dsnu,
                        ),
                    }
                }
            });
        }
    }

    /// Uncached `Sequential` fixed pattern for the rows starting at `y0`:
    /// the legacy per-position hash, unchanged.
    #[allow(clippy::too_many_arguments)]
    fn fill_band_hashed(
        src_band: &[f32],
        dst_band: &mut [f32],
        params: &PixelParams,
        seed: u64,
        ch: usize,
        y0: usize,
        wz: usize,
        need_prnu: bool,
        need_dsnu: bool,
    ) {
        for (dy, (src_row, dst_row)) in
            src_band.chunks_exact(wz).zip(dst_band.chunks_exact_mut(wz)).enumerate()
        {
            let y = (y0 + dy) as u64;
            let row_seed = seed ^ ((ch as u64) << 56) ^ (y << 28);
            let row_seed_dsnu = (seed ^ 0xABCD) ^ ((ch as u64) << 56) ^ (y << 28);
            for (x, (&irr, out)) in src_row.iter().zip(dst_row.iter_mut()).enumerate() {
                let prnu =
                    if need_prnu { params.prnu_sigma * fpn_hash(row_seed ^ x as u64) } else { 0.0 };
                let dsnu = if need_dsnu {
                    params.dsnu_sigma * fpn_hash(row_seed_dsnu ^ x as u64)
                } else {
                    0.0
                };
                *out = params.voltage_with_mismatch(irr, prnu, dsnu) as f32;
            }
        }
    }

    /// Uncached `Keyed` fixed pattern: a position-keyed Ziggurat Gaussian
    /// per sub-pixel, matching what [`FpnCache::ensure`] would tabulate.
    fn fill_band_keyed(
        src_band: &[f32],
        dst_band: &mut [f32],
        params: &PixelParams,
        seed: u64,
        first_site: usize,
        need_prnu: bool,
        need_dsnu: bool,
    ) {
        let sampler = NormalSampler::new();
        let key = noise::fpn_key(seed);
        for (i, (&irr, out)) in src_band.iter().zip(dst_band.iter_mut()).enumerate() {
            let site = (first_site + i) as u64;
            let prnu = if need_prnu {
                params.prnu_sigma
                    * noise::site_normal(&sampler, key, noise::stream(domain::FPN_PRNU, site))
            } else {
                0.0
            };
            let dsnu = if need_dsnu {
                params.dsnu_sigma
                    * noise::site_normal(&sampler, key, noise::stream(domain::FPN_DSNU, site))
            } else {
                0.0
            };
            *out = params.voltage_with_mismatch(irr, prnu, dsnu) as f32;
        }
    }

    /// Array width in pixel sites.
    pub fn width(&self) -> u32 {
        self.planes[0].width()
    }

    /// Array height in pixel sites.
    pub fn height(&self) -> u32 {
        self.planes[0].height()
    }

    /// Total number of sub-pixels (`width · height · 3`).
    pub fn subpixel_count(&self) -> u64 {
        self.width() as u64 * self.height() as u64 * 3
    }

    /// Pixel parameters the array was captured with.
    pub fn params(&self) -> &PixelParams {
        &self.params
    }

    /// Analog voltage of one sub-pixel (`channel` 0..3 = R, G, B).
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 3` or the coordinate is out of bounds.
    pub fn voltage(&self, channel: usize, x: u32, y: u32) -> f64 {
        self.planes[channel].get(x, y) as f64
    }

    /// Voltage plane of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= 3`.
    pub fn plane(&self, channel: usize) -> &Plane {
        &self.planes[channel]
    }

    /// Mean voltage over a window of one channel — what the averaging
    /// circuit ties together for a single-channel pooling site.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds windows (callers validate rectangles first).
    pub fn mean_window(&self, channel: usize, rect: Rect) -> f64 {
        let p = &self.planes[channel];
        let (x0, w) = (rect.x as usize, rect.w as usize);
        let mut acc = 0.0f64;
        for y in rect.y..rect.bottom() {
            for &v in &p.row(y)[x0..x0 + w] {
                acc += v as f64;
            }
        }
        acc / rect.area() as f64
    }

    /// Mean voltage over a window across all three channels — the
    /// gray-pooling configuration (`k·k·3` sub-pixels tied together).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds windows.
    pub fn mean_window_rgb(&self, rect: Rect) -> f64 {
        (self.mean_window(0, rect) + self.mean_window(1, rect) + self.mean_window(2, rect)) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_scene(level: f32) -> RgbImage {
        RgbImage::from_fn(8, 8, |_, _| (level, level, level))
    }

    #[test]
    fn noiseless_capture_is_exact() {
        let arr = PixelArray::from_scene(&flat_scene(0.5), PixelParams::noiseless(), 1);
        for ch in 0..3 {
            assert!((arr.voltage(ch, 3, 3) - 0.6).abs() < 1e-6);
        }
        assert_eq!(arr.subpixel_count(), 8 * 8 * 3);
    }

    #[test]
    fn fpn_is_deterministic_per_seed() {
        let p = PixelParams::default();
        let a = PixelArray::from_scene(&flat_scene(0.5), p, 7);
        let b = PixelArray::from_scene(&flat_scene(0.5), p, 7);
        let c = PixelArray::from_scene(&flat_scene(0.5), p, 8);
        assert_eq!(a.voltage(0, 2, 2), b.voltage(0, 2, 2));
        assert_ne!(a.voltage(0, 2, 2), c.voltage(0, 2, 2));
    }

    #[test]
    fn fpn_magnitude_is_bounded() {
        let p = PixelParams::default();
        let arr = PixelArray::from_scene(&flat_scene(0.5), p, 3);
        for ch in 0..3 {
            for y in 0..8 {
                for x in 0..8 {
                    let dv = (arr.voltage(ch, x, y) - 0.6).abs();
                    // 5 sigma of combined prnu (0.5% of 0.3 V) + dsnu (0.5 mV)
                    assert!(dv < 0.012, "fpn {dv} too large at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn refill_matches_fresh_capture() {
        let p = PixelParams::default();
        let small = flat_scene(0.3);
        let big = RgbImage::from_fn(12, 10, |x, y| (x as f32 / 12.0, y as f32 / 10.0, 0.5));
        let mut arr = PixelArray::from_scene(&small, p, 7);
        // Grow, then shrink back, through the same array.
        arr.refill_from_scene(&big, 9);
        let fresh_big = PixelArray::from_scene(&big, p, 9);
        assert_eq!((arr.width(), arr.height()), (12, 10));
        for ch in 0..3 {
            assert_eq!(arr.plane(ch), fresh_big.plane(ch), "channel {ch}");
        }
        arr.refill_from_scene(&small, 7);
        let fresh_small = PixelArray::from_scene(&small, p, 7);
        for ch in 0..3 {
            assert_eq!(arr.plane(ch), fresh_small.plane(ch), "channel {ch}");
        }
    }

    #[test]
    fn single_sigma_configs_match_fresh_capture() {
        // One mismatch kind disabled: the cache builds only the active
        // table, and refill stays bit-identical to a fresh capture.
        for params in [
            PixelParams { dsnu_sigma: 0.0, ..PixelParams::default() },
            PixelParams { prnu_sigma: 0.0, ..PixelParams::default() },
        ] {
            let scene = RgbImage::from_fn(9, 7, |x, y| (x as f32 / 9.0, y as f32 / 7.0, 0.4));
            let mut arr = PixelArray::from_scene(&scene, params, 11);
            arr.refill_from_scene(&scene, 11);
            let fresh = PixelArray::from_scene(&scene, params, 11);
            for ch in 0..3 {
                assert_eq!(arr.plane(ch), fresh.plane(ch), "channel {ch}");
            }
        }
    }

    #[test]
    fn keyed_fpn_is_deterministic_and_distinct_from_hash() {
        let p = PixelParams::default();
        let a = PixelArray::from_scene_with(&flat_scene(0.5), p, 7, NoiseRngMode::Keyed, 1, None);
        let b = PixelArray::from_scene_with(&flat_scene(0.5), p, 7, NoiseRngMode::Keyed, 1, None);
        let c = PixelArray::from_scene_with(&flat_scene(0.5), p, 8, NoiseRngMode::Keyed, 1, None);
        let hash = PixelArray::from_scene(&flat_scene(0.5), p, 7);
        for ch in 0..3 {
            assert_eq!(a.plane(ch), b.plane(ch), "channel {ch} not reproducible");
        }
        assert_ne!(a.voltage(0, 2, 2), c.voltage(0, 2, 2), "seed ignored");
        assert_ne!(a.voltage(0, 2, 2), hash.voltage(0, 2, 2), "modes share a pattern");
    }

    #[test]
    fn keyed_refill_matches_fresh_capture() {
        let p = PixelParams::default();
        let small = flat_scene(0.3);
        let big = RgbImage::from_fn(12, 10, |x, y| (x as f32 / 12.0, y as f32 / 10.0, 0.5));
        let mut arr = PixelArray::from_scene_with(&small, p, 7, NoiseRngMode::Keyed, 1, None);
        arr.refill_from_scene_with(&big, 9, NoiseRngMode::Keyed, 1, None);
        let fresh = PixelArray::from_scene_with(&big, p, 9, NoiseRngMode::Keyed, 1, None);
        for ch in 0..3 {
            assert_eq!(arr.plane(ch), fresh.plane(ch), "channel {ch}");
        }
    }

    #[test]
    fn sharded_refill_is_bit_identical_in_both_modes() {
        let p = PixelParams::default();
        let scene = RgbImage::from_fn(9, 13, |x, y| (x as f32 / 9.0, y as f32 / 13.0, 0.4));
        let pool = crate::shard::ShardPool::new(3);
        for mode in [NoiseRngMode::Sequential, NoiseRngMode::Keyed] {
            let reference = PixelArray::from_scene_with(&scene, p, 11, mode, 1, None);
            for shards in [2usize, 4, 13] {
                let mut sharded = PixelArray::from_scene_with(&scene, p, 11, mode, 1, None);
                sharded.refill_from_scene_with(&scene, 11, mode, shards, Some(&pool));
                for ch in 0..3 {
                    assert_eq!(
                        sharded.plane(ch),
                        reference.plane(ch),
                        "{mode:?} shards={shards} channel {ch}"
                    );
                }
            }
        }
    }

    #[test]
    fn keyed_direct_band_matches_cached_tables() {
        // The uncached per-position path and the cache tables must agree:
        // recompute two interior rows of channel 1 directly and compare
        // against a cache-built capture.
        let p = PixelParams::default();
        let scene = RgbImage::from_fn(6, 4, |x, y| (x as f32 / 6.0, y as f32 / 4.0, 0.5));
        let arr = PixelArray::from_scene_with(&scene, p, 21, NoiseRngMode::Keyed, 1, None);
        let (wz, sites) = (6usize, 24usize);
        let src = scene.planes()[1].as_slice();
        let band = &src[wz..3 * wz];
        let mut direct = vec![0.0f32; 2 * wz];
        PixelArray::fill_band_keyed(band, &mut direct, &p, 21, sites + wz, true, true);
        for (i, &v) in direct.iter().enumerate() {
            let (x, y) = ((i % wz) as u32, (1 + i / wz) as u32);
            assert_eq!(v as f64, arr.voltage(1, x, y), "({x},{y})");
        }
    }

    #[test]
    fn mean_window_averages() {
        let scene = RgbImage::from_fn(4, 4, |x, _| (x as f32 / 4.0, 0.0, 1.0));
        let arr = PixelArray::from_scene(&scene, PixelParams::noiseless(), 0);
        let m = arr.mean_window(0, Rect::new(0, 0, 4, 4));
        // irradiances 0, .25, .5, .75 -> mean 0.375 -> v = 0.3 + 0.6*0.375
        assert!((m - 0.525).abs() < 1e-6);
        let b = arr.mean_window(2, Rect::new(1, 1, 2, 2));
        assert!((b - 0.9).abs() < 1e-6);
    }

    #[test]
    fn mean_window_rgb_combines_channels() {
        let scene = RgbImage::from_fn(2, 2, |_, _| (0.0, 0.5, 1.0));
        let arr = PixelArray::from_scene(&scene, PixelParams::noiseless(), 0);
        let m = arr.mean_window_rgb(Rect::new(0, 0, 2, 2));
        // channel means: 0.3, 0.6, 0.9 -> 0.6
        assert!((m - 0.6).abs() < 1e-6);
    }
}
