//! 8-bit ADC model.
//!
//! Models the 45 nm folding ADC the paper cites ([Choi'15]): uniform
//! quantisation over a configurable input range, an optional bow-shaped
//! integral nonlinearity, and additive conversion noise. The *energy* per
//! conversion is deliberately not modelled here — `hirise-energy` owns all
//! cost accounting; this type only produces codes.

use rand::Rng;

use crate::{Result, SensorError};

/// A uniform-quantising ADC with optional INL bow and input-referred noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Adc {
    bits: u32,
    v_lo: f64,
    v_hi: f64,
    inl_lsb: f64,
    noise_sigma: f64,
}

impl Adc {
    /// Creates an ideal ADC with `bits` resolution over `v_lo..v_hi`.
    ///
    /// # Errors
    ///
    /// Rejects zero/oversized bit widths and empty ranges.
    pub fn new(bits: u32, v_lo: f64, v_hi: f64) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(SensorError::InvalidConfig { parameter: "adc bits", value: bits as f64 });
        }
        if !(v_hi > v_lo) {
            return Err(SensorError::InvalidConfig { parameter: "adc range", value: v_hi - v_lo });
        }
        Ok(Self { bits, v_lo, v_hi, inl_lsb: 0.0, noise_sigma: 0.0 })
    }

    /// The paper's configuration: 8-bit conversion of the pixel voltage
    /// swing (defaults of [`crate::PixelParams`]).
    pub fn paper_default() -> Self {
        Self::new(8, 0.3, 0.9).expect("static configuration is valid")
    }

    /// Adds a bow-shaped integral nonlinearity with peak `inl_lsb` LSBs.
    pub fn with_inl(mut self, inl_lsb: f64) -> Self {
        self.inl_lsb = inl_lsb;
        self
    }

    /// Adds Gaussian input-referred noise with standard deviation
    /// `sigma` volts.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of quantisation levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Input range `(v_lo, v_hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.v_lo, self.v_hi)
    }

    /// One LSB in volts.
    pub fn lsb(&self) -> f64 {
        (self.v_hi - self.v_lo) / (self.levels() - 1) as f64
    }

    /// Input-referred noise standard deviation, volts.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Converts an analog voltage to a code, drawing conversion noise from
    /// `rng`. Inputs outside the range clip to the end codes.
    pub fn convert<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> u16 {
        let mut x = v;
        if self.noise_sigma > 0.0 {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen::<f64>();
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            x += self.noise_sigma * g;
        }
        self.quantise(x)
    }

    /// Converts with an externally supplied standard-normal noise sample
    /// `g` (scaled by the configured sigma) — the position-keyed noise
    /// path, where the caller owns the draw so conversion stays a pure
    /// function of `(v, g)`.
    #[inline]
    pub fn convert_with_noise(&self, v: f64, g: f64) -> u16 {
        self.quantise(v + self.noise_sigma * g)
    }

    /// The deterministic quantiser shared by every conversion path.
    #[inline]
    fn quantise(&self, x: f64) -> u16 {
        let t = ((x - self.v_lo) / (self.v_hi - self.v_lo)).clamp(0.0, 1.0);
        let mut code = t * (self.levels() - 1) as f64;
        if self.inl_lsb != 0.0 {
            // Bow INL: zero at the range ends, peak mid-scale.
            code += self.inl_lsb * (std::f64::consts::PI * t).sin();
        }
        code.round().clamp(0.0, (self.levels() - 1) as f64) as u16
    }

    /// Converts without noise (deterministic path for tests/calibration).
    pub fn convert_ideal(&self, v: f64) -> u16 {
        struct NoRng;
        // Noise is only drawn when noise_sigma > 0, so a disabled copy is
        // the cheapest deterministic path.
        let _ = NoRng;
        let quiet = Self { noise_sigma: 0.0, ..self.clone() };
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        quiet.convert(v, &mut rng)
    }

    /// Maps a code back to the unit interval `0.0..=1.0`.
    pub fn code_to_unit(&self, code: u16) -> f32 {
        code as f32 / (self.levels() - 1) as f32
    }

    /// Maps a code back to volts within the conversion range.
    pub fn code_to_volts(&self, code: u16) -> f64 {
        self.v_lo + (self.v_hi - self.v_lo) * code as f64 / (self.levels() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn rejects_bad_config() {
        assert!(Adc::new(0, 0.0, 1.0).is_err());
        assert!(Adc::new(20, 0.0, 1.0).is_err());
        assert!(Adc::new(8, 1.0, 1.0).is_err());
        assert!(Adc::new(8, 1.0, 0.5).is_err());
    }

    #[test]
    fn paper_default_is_8bit() {
        let adc = Adc::paper_default();
        assert_eq!(adc.bits(), 8);
        assert_eq!(adc.levels(), 256);
        assert_eq!(adc.range(), (0.3, 0.9));
    }

    #[test]
    fn endpoints_map_to_end_codes() {
        let adc = Adc::new(8, 0.0, 1.0).unwrap();
        assert_eq!(adc.convert_ideal(0.0), 0);
        assert_eq!(adc.convert_ideal(1.0), 255);
        assert_eq!(adc.convert_ideal(-5.0), 0); // clips
        assert_eq!(adc.convert_ideal(5.0), 255); // clips
    }

    #[test]
    fn midscale_code() {
        let adc = Adc::new(8, 0.0, 1.0).unwrap();
        let c = adc.convert_ideal(0.5);
        assert!((c as i32 - 128).abs() <= 1);
    }

    #[test]
    fn quantisation_error_bounded_by_half_lsb() {
        let adc = Adc::new(8, 0.3, 0.9).unwrap();
        for i in 0..100 {
            let v = 0.3 + 0.6 * i as f64 / 99.0;
            let code = adc.convert_ideal(v);
            let back = adc.code_to_volts(code);
            assert!((back - v).abs() <= adc.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn code_roundtrips_exactly() {
        let adc = Adc::new(8, 0.3, 0.9).unwrap();
        for code in [0u16, 1, 100, 254, 255] {
            let v = adc.code_to_volts(code);
            assert_eq!(adc.convert_ideal(v), code);
        }
    }

    #[test]
    fn unit_mapping_endpoints() {
        let adc = Adc::new(8, 0.0, 1.0).unwrap();
        assert_eq!(adc.code_to_unit(0), 0.0);
        assert_eq!(adc.code_to_unit(255), 1.0);
    }

    #[test]
    fn inl_bows_midscale_only() {
        let ideal = Adc::new(8, 0.0, 1.0).unwrap();
        let bowed = Adc::new(8, 0.0, 1.0).unwrap().with_inl(2.0);
        assert_eq!(bowed.convert_ideal(0.0), ideal.convert_ideal(0.0));
        assert_eq!(bowed.convert_ideal(1.0), ideal.convert_ideal(1.0));
        let mid_ideal = ideal.convert_ideal(0.5) as i32;
        let mid_bowed = bowed.convert_ideal(0.5) as i32;
        assert_eq!(mid_bowed - mid_ideal, 2);
    }

    #[test]
    fn convert_with_noise_matches_quantiser() {
        let adc = Adc::new(8, 0.0, 1.0).unwrap().with_inl(0.5).with_noise(0.02);
        // A zero sample reduces to the deterministic conversion.
        for v in [0.0, 0.25, 0.5, 0.99] {
            assert_eq!(adc.convert_with_noise(v, 0.0), adc.convert_ideal(v));
        }
        // A supplied sample is scaled by sigma exactly like internal noise.
        assert_eq!(adc.convert_with_noise(0.5, 2.0), adc.convert_ideal(0.5 + 0.02 * 2.0));
        assert_eq!(adc.convert_with_noise(0.5, -2.0), adc.convert_ideal(0.5 - 0.02 * 2.0));
        assert_eq!(adc.noise_sigma(), 0.02);
    }

    #[test]
    fn noise_perturbs_codes() {
        let adc = Adc::new(8, 0.0, 1.0).unwrap().with_noise(0.02);
        let mut rng = StepRng::new(0x8000_0000_0000_0000, 0x1111_1111_1111_1111);
        let codes: Vec<u16> = (0..50).map(|_| adc.convert(0.5, &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = codes.iter().collect();
        assert!(distinct.len() > 1, "noise produced identical codes");
        // All stay near mid-scale.
        for c in codes {
            assert!((c as i32 - 128).abs() < 30);
        }
    }
}
