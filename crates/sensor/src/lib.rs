//! # hirise-sensor
//!
//! Behavioural model of the HiRISE image sensor: a high-resolution CMOS
//! pixel array that can
//!
//! 1. **read out conventionally** — every sub-pixel converted by the ADC
//!    (the paper's baseline),
//! 2. **pool in-sensor** — the analog averaging circuit of `hirise-analog`
//!    compresses `k×k` sites (optionally folding RGB to gray) *before* any
//!    conversion, so only `n·m/k²` (or `n·m·3/k²`) conversions happen,
//! 3. **read selective ROIs** — an address encoder converts only the pixels
//!    inside requested bounding boxes at full resolution.
//!
//! Analog fidelity is carried by three ingredients, each traceable to the
//! transistor-level simulation in `hirise-analog`:
//!
//! * the fitted linear transfer of the pooling circuit (gain/offset from
//!   [`hirise_analog::behavior::calibrated`]), inverted digitally after
//!   conversion,
//! * a residual systematic nonlinearity bounded by the circuit fit,
//! * pixel temporal/fixed-pattern noise and ADC quantisation/INL.
//!
//! The counts that drive every paper metric (conversions, transferred
//! bits, stored bytes) are accumulated in [`ReadoutStats`].
//!
//! # Example
//!
//! ```
//! use hirise_imaging::RgbImage;
//! use hirise_sensor::{ColorMode, Sensor, SensorConfig};
//!
//! # fn main() -> Result<(), hirise_sensor::SensorError> {
//! let scene = RgbImage::from_fn(64, 48, |x, y| {
//!     ((x % 7) as f32 / 7.0, (y % 5) as f32 / 5.0, 0.5)
//! });
//! let mut sensor = Sensor::new(scene, SensorConfig::default());
//! let (pooled, stats) = sensor.capture_pooled(4, ColorMode::Gray)?;
//! assert_eq!((pooled.width(), pooled.height()), (16, 12));
//! assert_eq!(stats.conversions, 16 * 12);
//!
//! // Selective readout: only the requested box is converted, at full
//! // resolution (3 sub-pixels per site), plus the coordinate words sent
//! // back to the sensor.
//! let roi = hirise_imaging::Rect::new(8, 8, 16, 16);
//! let (crops, roi_stats) = sensor.read_rois(&[roi])?;
//! assert_eq!(crops[0].dimensions(), (16, 16));
//! assert_eq!(roi_stats.conversions, 16 * 16 * 3);
//! # Ok(())
//! # }
//! ```

pub mod adc;
pub mod array;
pub mod noise;
pub mod pixel;
pub mod pooling;
pub mod roi;
pub mod sensor;
pub mod shard;

mod error;

pub use adc::Adc;
pub use array::PixelArray;
pub use error::SensorError;
pub use noise::NoiseRngMode;
pub use pixel::PixelParams;
pub use pooling::PoolingConfig;
pub use sensor::{ColorMode, ReadoutStats, Sensor, SensorConfig};
pub use shard::{CheckinTimeout, ShardPool};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SensorError>;
