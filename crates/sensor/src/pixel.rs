//! Single-pixel transfer and noise model.
//!
//! A pixel maps scene irradiance (normalised `0.0..=1.0`) to an analog
//! voltage between `v_dark` and `v_sat`. The defaults (`0.3 V` / `0.9 V`)
//! match the input range over which the pooling circuit's behavioural model
//! was fitted in `hirise-analog`, keeping every follower in saturation.
//!
//! Noise terms follow the usual CMOS-imager split:
//!
//! * **PRNU** (photo-response non-uniformity) — per-pixel multiplicative
//!   gain mismatch, fixed pattern,
//! * **DSNU** (dark-signal non-uniformity) — per-pixel additive offset,
//!   fixed pattern,
//! * **read noise** — temporal Gaussian noise drawn fresh at every readout.

/// Pixel transfer and noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelParams {
    /// Voltage at zero irradiance, volts.
    pub v_dark: f64,
    /// Voltage at full-scale irradiance, volts.
    pub v_sat: f64,
    /// Temporal read-noise standard deviation, volts.
    pub read_noise: f64,
    /// PRNU standard deviation (relative gain mismatch, dimensionless).
    pub prnu_sigma: f64,
    /// DSNU standard deviation, volts.
    pub dsnu_sigma: f64,
}

impl Default for PixelParams {
    fn default() -> Self {
        Self { v_dark: 0.3, v_sat: 0.9, read_noise: 0.5e-3, prnu_sigma: 0.005, dsnu_sigma: 0.5e-3 }
    }
}

impl PixelParams {
    /// Noise-free variant, useful for exactness tests.
    pub fn noiseless() -> Self {
        Self { read_noise: 0.0, prnu_sigma: 0.0, dsnu_sigma: 0.0, ..Self::default() }
    }

    /// Voltage swing `v_sat - v_dark`, volts.
    pub fn swing(&self) -> f64 {
        self.v_sat - self.v_dark
    }

    /// Ideal (mismatch-free) transfer: irradiance to voltage, clamping the
    /// irradiance into `0.0..=1.0`.
    pub fn voltage(&self, irradiance: f32) -> f64 {
        self.v_dark + self.swing() * irradiance.clamp(0.0, 1.0) as f64
    }

    /// Transfer with per-pixel fixed-pattern mismatch applied:
    /// `v = v_dark + swing · irr · (1 + prnu) + dsnu`.
    pub fn voltage_with_mismatch(&self, irradiance: f32, prnu: f64, dsnu: f64) -> f64 {
        self.v_dark + self.swing() * irradiance.clamp(0.0, 1.0) as f64 * (1.0 + prnu) + dsnu
    }

    /// Inverse ideal transfer: voltage back to irradiance (unclamped).
    pub fn irradiance(&self, voltage: f64) -> f32 {
        ((voltage - self.v_dark) / self.swing()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_behavior_fit_range() {
        let p = PixelParams::default();
        assert_eq!(p.v_dark, 0.3);
        assert_eq!(p.v_sat, 0.9);
        assert!((p.swing() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn transfer_endpoints() {
        let p = PixelParams::noiseless();
        assert!((p.voltage(0.0) - 0.3).abs() < 1e-12);
        assert!((p.voltage(1.0) - 0.9).abs() < 1e-12);
        assert!((p.voltage(0.5) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn transfer_clamps_out_of_range_irradiance() {
        let p = PixelParams::noiseless();
        assert!((p.voltage(-0.5) - 0.3).abs() < 1e-12);
        assert!((p.voltage(2.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let p = PixelParams::noiseless();
        for irr in [0.0f32, 0.25, 0.5, 0.99] {
            assert!((p.irradiance(p.voltage(irr)) - irr).abs() < 1e-6);
        }
    }

    #[test]
    fn mismatch_terms_apply() {
        let p = PixelParams::noiseless();
        let v = p.voltage_with_mismatch(0.5, 0.01, 0.002);
        // 0.3 + 0.6*0.5*1.01 + 0.002
        assert!((v - 0.605).abs() < 1e-9);
    }

    #[test]
    fn noiseless_has_zero_sigmas() {
        let p = PixelParams::noiseless();
        assert_eq!(p.read_noise, 0.0);
        assert_eq!(p.prnu_sigma, 0.0);
        assert_eq!(p.dsnu_sigma, 0.0);
    }
}
