use std::error::Error;
use std::fmt;

use hirise_imaging::ImagingError;

/// Error type for sensor operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// A pooling factor does not tile the array.
    InvalidPooling {
        /// Requested pooling factor.
        k: u32,
        /// Array width.
        width: u32,
        /// Array height.
        height: u32,
    },
    /// An ROI falls outside the pixel array.
    RoiOutOfBounds {
        /// Offending rectangle `(x, y, w, h)`.
        rect: (u32, u32, u32, u32),
        /// Array width.
        width: u32,
        /// Array height.
        height: u32,
    },
    /// A configuration value is non-physical.
    InvalidConfig {
        /// Parameter name.
        parameter: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Propagated image-layer failure.
    Imaging(ImagingError),
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::InvalidPooling { k, width, height } => {
                write!(f, "pooling factor {k} does not tile the {width}x{height} array")
            }
            SensorError::RoiOutOfBounds { rect, width, height } => write!(
                f,
                "roi x={} y={} w={} h={} outside {width}x{height} array",
                rect.0, rect.1, rect.2, rect.3
            ),
            SensorError::InvalidConfig { parameter, value } => {
                write!(f, "invalid sensor configuration: {parameter} = {value}")
            }
            SensorError::Imaging(e) => write!(f, "imaging error: {e}"),
        }
    }
}

impl Error for SensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SensorError::Imaging(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImagingError> for SensorError {
    fn from(e: ImagingError) -> Self {
        SensorError::Imaging(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            SensorError::InvalidPooling { k: 3, width: 8, height: 8 },
            SensorError::RoiOutOfBounds { rect: (0, 0, 9, 9), width: 8, height: 8 },
            SensorError::InvalidConfig { parameter: "bits", value: 0.0 },
            SensorError::Imaging(ImagingError::Decode("x".into())),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn imaging_source_preserved() {
        let e = SensorError::Imaging(ImagingError::Decode("bad".into()));
        assert!(e.source().is_some());
    }
}
