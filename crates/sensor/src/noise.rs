//! Noise-synthesis modes and the position-keyed draw plumbing.
//!
//! The sensor models three stochastic ingredients — fixed-pattern
//! mismatch, temporal read noise, and ADC conversion noise — and offers
//! two ways to realise them ([`NoiseRngMode`]):
//!
//! * **`Sequential`** (legacy): every draw comes from one sequential
//!   generator in traversal order. Bit-identical to the historical
//!   implementation (Box–Muller over the xoshiro `StdRng`), which is why
//!   it is retained: committed goldens and any externally recorded
//!   streams keep reproducing exactly. The cost is a total order on
//!   draws — no two sites can be computed concurrently, and skipping a
//!   site shifts every later value.
//!
//! * **`Keyed`** (default): every draw is a pure function of *where* and
//!   *when* it happens — `(seed, readout op, domain, site)` — through the
//!   counter-based [`rand::rngs::KeyedRng`] and the Ziggurat
//!   [`NormalSampler`]. Values no longer depend on traversal order, so
//!   row ranges of a frame can be computed on different threads (or in
//!   any order) with bit-identical results, and overlapping ROI readouts
//!   of one request see consistent pixel noise. It is also markedly
//!   faster: the Ziggurat common case is one `u64` block and one
//!   multiply versus Box–Muller's `ln`/`sqrt`/`cos` per draw.
//!
//! The key layout: a per-readout key is derived from
//! `(noise seed, op counter)` with `frame_key`; each individual draw
//! stream is `(domain << 56) | site` (`stream`), where the domain
//! separates pooling noise, ADC noise, full-read noise, ROI noise and
//! the two fixed-pattern kinds, and `site` is the flat position index.

use rand::distributions::NormalSampler;
use rand::rngs::KeyedRng;

/// How the sensor realises its stochastic noise terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoiseRngMode {
    /// One sequential generator, draws in traversal order. Preserves the
    /// historical bit streams (legacy goldens) at the cost of a total
    /// order on draws.
    Sequential,
    /// Counter-based position-keyed draws: each value is a pure function
    /// of its coordinates. Order-independent, row-shardable, and the
    /// fast path.
    #[default]
    Keyed,
}

impl std::fmt::Display for NoiseRngMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoiseRngMode::Sequential => write!(f, "sequential"),
            NoiseRngMode::Keyed => write!(f, "keyed"),
        }
    }
}

impl std::str::FromStr for NoiseRngMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Ok(NoiseRngMode::Sequential),
            "keyed" | "key" => Ok(NoiseRngMode::Keyed),
            other => Err(format!("unknown noise mode {other:?} (expected sequential|keyed)")),
        }
    }
}

/// XOR mask decorrelating the temporal-noise stream from the
/// fixed-pattern seed (shared by both modes).
pub(crate) const TEMPORAL_SEED_MASK: u64 = 0x0123_4567_89AB_CDEF;

/// Draw-stream domains: the top byte of a stream id. Keeps the noise of
/// different readout paths (and the two fixed-pattern kinds) on disjoint
/// streams even when their site indices coincide.
// lint:allow(rng-domain-registry): readout noise lives in a per-op key
// space (`frame_key(noise_seed, op)`) that never shares a key with the
// scenario seed, so these tags cannot correlate with the central
// registry's; their values are pinned by the sensor golden CSVs.
pub(crate) mod domain {
    /// Fixed-pattern PRNU mismatch (keyed off the raw sensor seed).
    pub const FPN_PRNU: u64 = 1;
    /// Fixed-pattern DSNU mismatch (keyed off the raw sensor seed).
    pub const FPN_DSNU: u64 = 2;
    /// Pooled capture: per-site pooling + stage-1 ADC noise, one domain
    /// per channel (`POOL + channel`; gray pooling uses `POOL`).
    pub const POOL: u64 = 3;
    /// Conventional full readout (read noise + ADC noise per sub-pixel).
    pub const FULL: u64 = 6;
    /// Selective ROI readout (read noise + ADC noise per sub-pixel, at
    /// absolute array coordinates).
    pub const ROI: u64 = 7;
}

/// Composes a draw-stream id from a domain and a flat site index.
#[inline]
pub(crate) fn stream(domain: u64, site: u64) -> u64 {
    (domain << 56) | site
}

/// The per-readout key: mixes the sensor's temporal-noise seed with the
/// readout-op counter, so successive captures of one sensor are
/// independent realisations while equal `(seed, op)` pairs reproduce.
#[inline]
pub(crate) fn frame_key(noise_seed: u64, op: u64) -> u64 {
    KeyedRng::derive_key(noise_seed, op)
}

/// The fixed-pattern key: a pure function of the sensor seed (no op
/// counter — the pattern must be identical across captures).
#[inline]
pub(crate) fn fpn_key(seed: u64) -> u64 {
    KeyedRng::derive_key(seed, 0)
}

/// One standard-normal draw for a `(key, stream)` position — the
/// keyed-mode unit of noise.
#[inline]
pub(crate) fn site_normal(sampler: &NormalSampler, key: u64, stream_id: u64) -> f64 {
    sampler.sample(&mut KeyedRng::for_stream(key, stream_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("keyed".parse::<NoiseRngMode>().unwrap(), NoiseRngMode::Keyed);
        assert_eq!("Sequential".parse::<NoiseRngMode>().unwrap(), NoiseRngMode::Sequential);
        assert!("boxmuller".parse::<NoiseRngMode>().is_err());
        assert_eq!(NoiseRngMode::Keyed.to_string(), "keyed");
        assert_eq!(NoiseRngMode::Sequential.to_string(), "sequential");
        assert_eq!(NoiseRngMode::default(), NoiseRngMode::Keyed);
    }

    #[test]
    fn site_draws_are_position_pure() {
        let sampler = NormalSampler::new();
        let key = frame_key(7, 0);
        let a = site_normal(&sampler, key, stream(domain::POOL, 42));
        let b = site_normal(&sampler, key, stream(domain::POOL, 42));
        assert_eq!(a, b);
        assert_ne!(a, site_normal(&sampler, key, stream(domain::POOL, 43)));
        assert_ne!(a, site_normal(&sampler, key, stream(domain::FULL, 42)));
        assert_ne!(a, site_normal(&sampler, frame_key(7, 1), stream(domain::POOL, 42)));
    }
}
