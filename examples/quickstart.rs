//! Quickstart: run the HiRISE two-stage pipeline on one synthetic scene
//! and compare it against the conventional full-readout baseline.
//!
//! Also regenerates the paper's Fig.-1 comparison qualitatively: the ROI
//! as a processor-scaled low-resolution crop vs the in-sensor
//! full-resolution crop, written as PPM images under `results/`.
//!
//! Run: `cargo run --release --example quickstart`

use hirise::baseline::ConventionalPipeline;
use hirise::{ColorMode, HiriseConfig, HirisePipeline, SensorConfig};
use hirise_imaging::{io, ops};
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CrowdHuman-like scene on a 1280x960 array (scale the config up to
    // 2560x1920 for the paper's exact numbers; everything is proportional).
    let generator = SceneGenerator::new(DatasetSpec::crowdhuman_like());
    let mut rng = StdRng::seed_from_u64(2024);
    let scene = generator.generate(1280, 960, &mut rng);
    println!("scene: 1280x960 with {} annotated objects", scene.objects.len());

    let config = HiriseConfig::builder(1280, 960)
        .pooling(4) // stage-1 sees 320x240
        .stage1_color(ColorMode::Rgb)
        .max_rois(16)
        .build()?;
    let pipeline = HirisePipeline::new(config);
    let run = pipeline.run(&scene.image)?;

    println!(
        "stage-1: {}x{} pooled image, {} detections, {} ROIs requested",
        run.pooled_image.width(),
        run.pooled_image.height(),
        run.detections.len(),
        run.rois.len()
    );
    println!("{}", run.report);

    let baseline = ConventionalPipeline::new(SensorConfig::default());
    let (_, base_report) = baseline.run(&scene.image);
    println!(
        "conventional baseline: transfer {:.1} kB, energy {:.3} mJ",
        base_report.total_transfer_kb(),
        base_report.sensor_energy_mj_default()
    );
    println!(
        "reductions: transfer {:.1}x, conversions {:.1}x, peak image memory {:.1}x",
        base_report.total_transfer_bits() as f64 / run.report.total_transfer_bits() as f64,
        base_report.conversions() as f64 / run.report.conversions() as f64,
        base_report.peak_image_bytes() as f64 / run.report.peak_image_bytes() as f64
    );

    // Fig.-1 style comparison for the first ROI.
    if let (Some(roi_rect), Some(roi_img)) = (run.rois.first(), run.roi_images.first()) {
        std::fs::create_dir_all("results")?;
        // (a) the crop a low-resolution system would have: cut from the
        // pooled image and blown back up.
        if let Some(pooled_rgb) = run.pooled_image.as_rgb() {
            let low = roi_rect.scaled(1, 4).clamped(pooled_rgb.width(), pooled_rgb.height());
            if !low.is_degenerate() {
                let crop = pooled_rgb.crop(low)?;
                let up = ops::resize_rgb(&crop, roi_rect.w, roi_rect.h)?;
                io::save_ppm(&up, "results/fig1_in_processor_roi.ppm")?;
            }
        }
        // (b) the HiRISE full-resolution ROI.
        io::save_ppm(roi_img, "results/fig1_hirise_roi.ppm")?;
        println!(
            "wrote results/fig1_in_processor_roi.ppm and results/fig1_hirise_roi.ppm (ROI {roi_rect})"
        );
    }
    Ok(())
}
