//! Transistor-level tour of the in-sensor averaging circuit: build the
//! Fig.-4 netlist, solve DC operating points, run a transient, fit the
//! behavioural model, and verify the behavioural sensor stays consistent
//! with the transistor-level truth.
//!
//! Run: `cargo run --release --example circuit_sim`

use hirise_analog::behavior::PoolingBehavior;
use hirise_analog::device::Stimulus;
use hirise_analog::pooling::PoolingCircuit;
use hirise_sensor::PoolingConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 inputs = one 2x2 RGB pooling site (2*2*3 sub-pixels).
    let circuit = PoolingCircuit::builder(12).build()?;
    println!(
        "Fig.-4 circuit with {} inputs ({} devices in the netlist)",
        circuit.input_count(),
        circuit.circuit().device_count()
    );

    // DC: the output follows the mean of the inputs through a linear map.
    let uniform = circuit.dc_average(&[0.6; 12])?;
    let mixed =
        circuit.dc_average(&[0.3, 0.9, 0.5, 0.7, 0.45, 0.75, 0.6, 0.6, 0.35, 0.85, 0.55, 0.65])?;
    println!("dc: uniform-0.6V input -> {uniform:.4} V; mixed same-mean input -> {mixed:.4} V");

    // Fit the behavioural line and report the systematic nonlinearity.
    let fit = PoolingBehavior::fit(&circuit, (0.3, 0.9), 13)?;
    println!(
        "behavioural fit: gain {:.4}, offset {:.4} V, worst residual {:.2} mV",
        fit.gain,
        fit.offset,
        fit.max_residual * 1e3
    );

    // The sensor crate's defaults must match this fit (they are the
    // calibrated constants that keep system simulation traceable to the
    // transistor level).
    let sensor_cfg = PoolingConfig::default();
    println!(
        "sensor defaults: gain {:.4}, offset {:.4} (drift vs fresh fit: {:.2e}, {:.2e})",
        sensor_cfg.gain,
        sensor_cfg.offset,
        (sensor_cfg.gain - fit.gain).abs(),
        (sensor_cfg.offset - fit.offset).abs()
    );

    // Transient: one input steps while the others hold — the output moves
    // by gain/12 of the step, after the RC settling.
    let mut stimuli = vec![Stimulus::Dc(0.6); 12];
    stimuli[0] = Stimulus::Pulse {
        v1: 0.4,
        v2: 0.8,
        delay: 0.5e-6,
        rise: 10e-9,
        fall: 10e-9,
        width: 1.0,
        period: 0.0,
    };
    let tr = circuit.transient(&stimuli, 20e-9, 2e-6)?;
    let wave = tr.waveform(circuit.avg_node());
    let before = wave.sample_at(0.45e-6);
    let after = wave.sample_at(1.9e-6);
    println!(
        "transient: avg moved {:.2} mV for a 400 mV single-input step (expected ≈ {:.2} mV)",
        (after - before) * 1e3,
        fit.gain * 0.4 / 12.0 * 1e3
    );
    Ok(())
}
