//! Streaming throughput: run the two-stage pipeline over a clip of
//! generated surveillance frames on worker pools of increasing size and
//! report frames/sec, per-frame energy, and ROI statistics.
//!
//! Run: `cargo run --release --example stream_throughput`

use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};
use hirise::{HiriseConfig, HirisePipeline};
use hirise_imaging::RgbImage;
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const W: u32 = 640;
    const H: u32 = 480;
    const FRAMES: usize = 48;

    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(7);
    let clip: Vec<RgbImage> =
        (0..FRAMES).map(|_| generator.generate(W, H, &mut rng).image).collect();
    println!("clip: {FRAMES} frames at {W}x{H}");

    let config = HiriseConfig::builder(W, H).pooling(4).max_rois(8).build()?;
    let pipeline = HirisePipeline::new(config);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut single_fps = None;
    for workers in [1usize, 2, 4, cores] {
        let executor = StreamExecutor::new(
            pipeline.clone(),
            StreamConfig::default()
                .workers(workers)
                .batch_size(2)
                .ordering(StreamOrdering::Deterministic),
        )?;
        let summary = executor.run(&clip)?;
        let fps = summary.frames_per_sec();
        let speedup = single_fps.get_or_insert(fps);
        println!(
            "{workers:>2} workers: {fps:7.2} fps ({:4.2}x), {:.2} rois/frame, {:.3} mJ/frame",
            fps / *speedup,
            summary.mean_rois(),
            summary.mean_energy_mj(),
        );
    }

    // The same clip as an unbounded-style iterator feed (bounded memory).
    let executor = StreamExecutor::new(pipeline, StreamConfig::default())?;
    let summary = executor.run_stream(clip)?;
    println!("iterator feed: {summary}");
    Ok(())
}
