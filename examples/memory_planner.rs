//! Memory planning walkthrough: how the TFLite-Micro-style arena planner
//! turns a model graph into the peak-SRAM numbers of Fig. 6 / Table 3, and
//! why greedy lifetime-aware placement matters on a 512 kB budget.
//!
//! Run: `cargo run --release --example memory_planner`

use hirise_nn::planner::{liveness_lower_bound, naive_peak, plan_greedy, plan_is_valid};
use hirise_nn::zoo;

fn main() {
    const KB: f64 = 1024.0;
    println!("== MCUNetV2-like stage-2 classifier at a 112x112 ROI ==");
    let graph = zoo::mcunet_v2_classifier(112);
    print!("{}", graph.summary());

    let tensors = graph.tensor_lifetimes();
    let plan = plan_greedy(&tensors);
    assert!(plan_is_valid(&tensors, &plan), "planner produced an overlapping layout");
    println!();
    println!("arena layout (tensor id -> offset, size):");
    for (id, offset) in &plan.offsets {
        let t = &tensors[*id];
        println!(
            "  t{id:<3} @ {:>8} B, {:>8} B, live ops {}..{}",
            offset, t.size_bytes, t.first_use, t.last_use
        );
    }
    println!();
    println!(
        "greedy peak {:.1} kB | naive no-reuse {:.1} kB | liveness lower bound {:.1} kB",
        plan.peak_bytes as f64 / KB,
        naive_peak(&tensors) as f64 / KB,
        liveness_lower_bound(&tensors) as f64 / KB
    );

    println!();
    println!("== Peak SRAM vs ROI size (the Table-3 'Peak Act' column) ==");
    println!("{:>6} | {:>12} | {:>12}", "roi", "mcunet kB", "mobilenet kB");
    for roi in [14usize, 28, 42, 56, 70, 84, 98, 112] {
        println!(
            "{:>6} | {:>12.1} | {:>12.1}",
            roi,
            zoo::mcunet_v2_classifier(roi).peak_activation_bytes() as f64 / KB,
            zoo::mobilenet_v2_classifier(roi).peak_activation_bytes() as f64 / KB
        );
    }
    println!();
    println!(
        "both models stay below the STM32H743's 512 kB budget up to 112x112 ROIs only with \
         lifetime-aware planning; the naive allocator would not fit"
    );
}
