//! VisDrone-like scenario: many tiny objects seen from above — the
//! configuration where resolution matters most (the paper's most
//! resolution-sensitive dataset). Compares stage-1 detection recall at
//! several pooling levels on the same scene.
//!
//! Run: `cargo run --release --example drone_surveillance`

use hirise::{ColorMode, HiriseConfig, HirisePipeline};
use hirise_detect::eval::{evaluate, GroundTruth};
use hirise_scene::{DatasetSpec, ObjectClass, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::visdrone_like();
    let generator = SceneGenerator::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let scene = generator.generate(1280, 960, &mut rng);
    println!(
        "aerial scene: 1280x960, {} objects across {} classes",
        scene.objects.len(),
        spec.classes.len()
    );

    for k in [8u32, 4, 2] {
        // Dataset-tuned detector (anchor priors from the preset).
        let mut det_cfg = hirise_bench_detector(&spec);
        det_cfg.score_threshold = 0.05;
        let config = HiriseConfig::builder(1280, 960)
            .pooling(k)
            .stage1_color(ColorMode::Rgb)
            .detector(det_cfg)
            .max_rois(64)
            .build()?;
        let pipeline = HirisePipeline::new(config);
        let run = pipeline.run(&scene.image)?;

        // Class-agnostic recall of stage 1 at IoU 0.3 (did we find the
        // object at all, so stage 2 can read it out?).
        let gts: Vec<GroundTruth> = scene
            .objects
            .iter()
            .map(|o| GroundTruth { class: 0, bbox: o.bbox.scaled(1, k) })
            .collect();
        let dets: Vec<hirise::Detection> =
            run.detections.iter().map(|d| hirise::Detection { class: 0, ..*d }).collect();
        let result = evaluate(&[dets], &[gts], 0.3);
        println!(
            "k = {k} (stage-1 at {}x{}): {} detections, class-agnostic AP@0.3 = {:.1} %, transfer {:.0} kB, energy {:.3} mJ",
            1280 / k,
            960 / k,
            run.detections.len(),
            100.0 * result.map,
            run.report.total_transfer_kb(),
            run.report.sensor_energy_mj_default()
        );
    }
    println!("expected: AP rises sharply as pooling shrinks — tiny objects vanish at 8x8, exactly the paper's VisDrone observation");
    Ok(())
}

/// Local copy of the bench harness's dataset-tuned detector settings (the
/// example avoids depending on the bench crate).
fn hirise_bench_detector(spec: &DatasetSpec) -> hirise::DetectorConfig {
    hirise::DetectorConfig {
        class_aspects: spec
            .classes
            .iter()
            .filter(|c| **c != ObjectClass::Head)
            .map(|c| (c.id(), c.aspect()))
            .collect(),
        min_object_frac: spec.scale_range.0 * 0.7,
        max_object_frac: (spec.scale_range.1 * 1.4).min(0.9),
        ..hirise::DetectorConfig::default()
    }
}
