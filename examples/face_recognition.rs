//! Two-stage face/expression scenario (the paper's Section 4.5 use case):
//! stage 1 finds heads in a crowd on the pooled image; stage 2 reads the
//! full-resolution head ROIs and runs an expression classifier trained on
//! RAF-DB-like patches.
//!
//! Run: `cargo run --release --example face_recognition`

use hirise::{ColorMode, HiriseConfig, HirisePipeline};
use hirise_imaging::{color, ops};
use hirise_nn::train::TrainConfig;
use hirise_nn::Mlp;
use hirise_scene::{DatasetSpec, Expression, FacePatchGenerator, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INPUT: u32 = 24;

fn features(img: &hirise_imaging::RgbImage) -> Vec<f32> {
    let gray = color::rgb_to_gray_mean(img);
    let resized = ops::resize_gray(&gray, INPUT, INPUT).expect("nonzero input size");
    resized.plane().as_slice().iter().map(|&v| v - 0.5).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the stage-2 expression model on synthetic RAF-DB-like patches.
    println!("training stage-2 expression classifier ...");
    let patchgen = FacePatchGenerator::new(112);
    let mut rng = StdRng::seed_from_u64(7);
    let train: Vec<(Vec<f32>, usize)> = patchgen
        .dataset(30, &mut rng)
        .into_iter()
        .map(|(img, label)| (features(&img), label.id()))
        .collect();
    let mut mlp = Mlp::new((INPUT * INPUT) as usize, 48, Expression::ALL.len(), &mut rng)?;
    let cfg = TrainConfig { epochs: 20, learning_rate: 0.01, weight_decay: 1e-4 };
    mlp.train(&train, &cfg, &mut rng)?;
    let test: Vec<(Vec<f32>, usize)> = patchgen
        .dataset(10, &mut rng)
        .into_iter()
        .map(|(img, label)| (features(&img), label.id()))
        .collect();
    println!("  held-out patch accuracy: {:.1} %", 100.0 * mlp.accuracy(&test)?);

    // A crowd scene; stage 1 works on the pooled image.
    let generator = SceneGenerator::new(DatasetSpec::crowdhuman_like());
    let scene = generator.generate(1280, 960, &mut rng);
    let config = HiriseConfig::builder(1280, 960)
        .pooling(4)
        .stage1_color(ColorMode::Gray) // cheapest stage-1 capture
        .max_rois(8)
        .roi_margin(2)
        .build()?;
    let pipeline = HirisePipeline::new(config);
    let run = pipeline.run(&scene.image)?;
    println!(
        "stage-1 (gray 320x240): {} detections -> {} full-res ROIs",
        run.detections.len(),
        run.rois.len()
    );
    println!("{}", run.report);

    // Stage 2: classify each full-resolution ROI crop.
    for (rect, roi) in run.rois.iter().zip(&run.roi_images) {
        let probs = mlp.predict_proba(&features(roi))?;
        let best = probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, p)| (Expression::from_id(i).expect("valid id"), *p))
            .expect("non-empty classes");
        println!(
            "  roi {rect}: predicted {} (p = {:.2}) from a {}x{} crop",
            best.0,
            best.1,
            roi.width(),
            roi.height()
        );
    }
    println!("note: crops here are crowd persons, not rendered faces — predictions demonstrate the dataflow, the accuracy experiment lives in the table3 bench");
    Ok(())
}
