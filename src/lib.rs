//! # hirise-repro
//!
//! Workspace umbrella crate for the HiRISE reproduction (Reidy et al.,
//! "HiRISE: High-Resolution Image Scaling for Edge ML via In-Sensor
//! Compression and Selective ROI", DAC 2024).
//!
//! This crate exists to host the cross-crate integration tests (`tests/`)
//! and the runnable examples (`examples/`); the implementation lives in
//! the `crates/` members:
//!
//! | crate | contents |
//! |---|---|
//! | [`hirise`] | the core two-stage pipeline, configuration, analytics, streaming executor |
//! | [`hirise_analog`] | SPICE-like circuit simulation of the pooling circuit |
//! | [`hirise_sensor`] | behavioural pixel array, ADC, selective ROI readout |
//! | [`hirise_imaging`] | image buffers, scaling, drawing, PPM/PGM IO |
//! | [`hirise_scene`] | synthetic dataset generation |
//! | [`hirise_detect`] | stage-1 detector and mAP evaluation |
//! | [`hirise_nn`] | tiny-ML layers, arena memory planner, trainable MLP |
//! | [`hirise_energy`] | Table-1 cost model and calibrated energies |
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.

pub use hirise;
pub use hirise_analog;
pub use hirise_detect;
pub use hirise_energy;
pub use hirise_imaging;
pub use hirise_nn;
pub use hirise_scene;
pub use hirise_sensor;
