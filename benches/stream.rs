//! Criterion benchmark of the streaming executor: frames/sec scaling of
//! the worker pool against the single-threaded fold, over generated
//! surveillance frames at a mid-size array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};
use hirise::{HiriseConfig, HirisePipeline};
use hirise_imaging::RgbImage;
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const W: u32 = 320;
const H: u32 = 240;
const FRAMES: usize = 24;

fn frames() -> Vec<RgbImage> {
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(2024);
    (0..FRAMES).map(|_| generator.generate(W, H, &mut rng).image).collect()
}

fn executor(workers: usize, ordering: StreamOrdering) -> StreamExecutor {
    let config = HiriseConfig::builder(W, H).pooling(4).max_rois(8).build().expect("valid config");
    StreamExecutor::new(
        HirisePipeline::new(config),
        StreamConfig::default().workers(workers).batch_size(2).ordering(ordering),
    )
    .expect("valid stream config")
}

fn bench_worker_scaling(c: &mut Criterion) {
    let frames = frames();
    let mut group = c.benchmark_group("stream_executor");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let executor = executor(workers, StreamOrdering::Deterministic);
        group.bench_with_input(BenchmarkId::new("workers", workers), &frames, |b, frames| {
            b.iter(|| executor.run(frames).expect("stream succeeds"));
        });
    }
    group.finish();
}

fn bench_orderings(c: &mut Criterion) {
    let frames = frames();
    let mut group = c.benchmark_group("stream_ordering_4_workers");
    group.sample_size(10);
    for (name, ordering) in
        [("deterministic", StreamOrdering::Deterministic), ("arrival", StreamOrdering::Arrival)]
    {
        let executor = executor(4, ordering);
        group.bench_with_input(BenchmarkId::from_parameter(name), &frames, |b, frames| {
            b.iter(|| executor.run(frames).expect("stream succeeds"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_worker_scaling, bench_orderings
}
criterion_main!(benches);
