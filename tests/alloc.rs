//! Allocation accounting for the frame path (verification layer 5).
//!
//! A counting `#[global_allocator]` wrapper proves the tentpole property
//! of the scratch-buffer architecture: after warm-up,
//! [`HirisePipeline::run_with_scratch`] performs **zero heap allocations
//! per frame**, while the legacy allocating path (`run`) pays thousands.
//!
//! The counter is thread-local so the libtest harness (which runs each
//! `#[test]` on its own thread, possibly several in parallel) cannot
//! perturb a measurement from another thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use hirise::{HiriseConfig, HirisePipeline, NoiseRngMode, PipelineScratch, SensorConfig};
use hirise_imaging::{draw, Rect, RgbImage};

/// Counts this thread's allocation events (`alloc`, `alloc_zeroed`, and
/// every `realloc` — growing or shrinking — count; `dealloc` does not)
/// and forwards to the system allocator.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` so allocations during thread teardown (after TLS
    // destruction) never panic inside the allocator.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a thread-local counter
// bump, and `bump()` itself never allocates (Cell arithmetic only), so
// there is no reentrancy into the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded
    // verbatim to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    // SAFETY: caller upholds the contract; forwarded verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller upholds the contract (`ptr` from this allocator
    // with this `layout`); forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller upholds the contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocation events on the current thread during `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// A busy scene: several textured objects so the frame exercises the
/// detector, part grouping, NMS, ROI mapping and multi-ROI readout.
fn scene(w: u32, h: u32, shift: u32) -> RgbImage {
    let mut img = RgbImage::from_fn(w, h, |_, _| (0.35, 0.35, 0.35));
    for (i, (ox, oy)) in
        [(w / 6, h / 5), (w / 2, h / 3), (2 * w / 3, 2 * h / 3)].into_iter().enumerate()
    {
        let obj = Rect::new(ox + shift, oy, w / 8 + 4 * i as u32, h / 4);
        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
        let [pr, _, _] = img.planes_mut();
        draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
    }
    img
}

fn pipeline() -> HirisePipeline {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(192, 144)
        .pooling(2)
        .sensor(SensorConfig::default())
        .detector(detector)
        .max_rois(4)
        .build()
        .unwrap();
    HirisePipeline::new(config)
}

#[test]
fn scratch_path_is_allocation_free_after_warmup() {
    let pipeline = pipeline();
    let frames: Vec<RgbImage> = (0..8).map(|i| scene(192, 144, i)).collect();
    let mut scratch = PipelineScratch::new();

    // Warm-up: every buffer (and the ROI crop pool, whose plane↔size
    // pairings shuffle while ROI counts vary) grows to its high-water
    // capacity over the working set. Two passes bound the pool shuffling.
    for _ in 0..2 {
        for frame in &frames {
            pipeline.run_with_scratch(frame, &mut scratch).unwrap();
        }
    }

    for (i, frame) in frames.iter().enumerate() {
        let mut timed = hirise::StageTimings::default();
        let count = allocations_during(|| {
            let report = pipeline.run_with_scratch(frame, &mut scratch).unwrap();
            // The per-stage profiler rides along on every frame; reading
            // it back must not change the allocation count either.
            timed = report.timings;
        });
        assert_eq!(count, 0, "frame {i}: scratch path allocated {count} times");
        assert!(
            timed.capture + timed.pool > std::time::Duration::ZERO,
            "frame {i}: stage timings missing from the zero-allocation path"
        );
    }
}

#[test]
fn keyed_row_sharded_path_is_allocation_free_after_warmup() {
    // The row-sharded keyed frame path must preserve the zero-allocation
    // contract: the shard workers are spawned once (during warm-up, when
    // the scratch sensor is first built) and every later dispatch hands
    // the stack-held job over without touching the heap on this thread.
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(192, 144)
        .pooling(2)
        .sensor(SensorConfig { noise_rng: NoiseRngMode::Keyed, shards: 2, ..Default::default() })
        .detector(detector)
        .max_rois(4)
        .build()
        .unwrap();
    let pipeline = HirisePipeline::new(config);
    let frames: Vec<RgbImage> = (0..8).map(|i| scene(192, 144, i)).collect();
    let mut scratch = PipelineScratch::new();
    for _ in 0..2 {
        for frame in &frames {
            pipeline.run_with_scratch(frame, &mut scratch).unwrap();
        }
    }
    for (i, frame) in frames.iter().enumerate() {
        let count = allocations_during(|| {
            pipeline.run_with_scratch(frame, &mut scratch).unwrap();
        });
        assert_eq!(count, 0, "frame {i}: sharded keyed path allocated {count} times");
    }
}

#[test]
fn tracked_non_keyframes_are_allocation_free_after_warmup() {
    // The temporal pipeline's whole point is that non-keyframes are
    // cheap: capture + predicted-ROI readout only. That steady state
    // must also uphold the zero-allocation contract — tracks, candidate
    // boxes, association tables and ROI buffers all live in the reusable
    // TrackerState/PipelineScratch pair.
    use hirise::temporal::{TrackerState, TrackingPipeline};
    use hirise::{FrameKind, TemporalConfig};

    // Drift disabled (threshold 1.0 can never fire on unit-range data),
    // so measured frames split cleanly into scheduled keyframes and
    // pure tracked frames.
    let temporal =
        TemporalConfig::default().keyframe_interval(4).drift_threshold(1.0).min_track_iou(0.2);
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(192, 144)
        .pooling(2)
        .sensor(SensorConfig::default())
        .detector(detector)
        .max_rois(4)
        .roi_margin(2)
        .build()
        .unwrap();
    let tracker = TrackingPipeline::new(config, temporal).unwrap();
    let frames: Vec<RgbImage> = (0..8).map(|i| scene(192, 144, i)).collect();
    let mut state = TrackerState::new();
    let mut scratch = PipelineScratch::new();

    // Warm-up: two passes grow every buffer (tracks, ROI crops, pool
    // pairings) to its high-water size; the tracker state carries on —
    // resetting it would also reset the keyframe schedule.
    for _ in 0..2 {
        for frame in &frames {
            tracker.run_frame(frame, &mut state, &mut scratch).unwrap();
        }
    }

    let mut tracked = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let mut kind = FrameKind::Keyframe;
        let count = allocations_during(|| {
            kind = tracker.run_frame(frame, &mut state, &mut scratch).unwrap().kind;
        });
        assert_ne!(kind, FrameKind::DriftRefresh, "frame {i}: drift fired with threshold 1.0");
        if kind == FrameKind::Tracked {
            tracked += 1;
            assert_eq!(count, 0, "frame {i}: tracked frame allocated {count} times");
        }
    }
    assert!(tracked >= 4, "too few tracked frames measured ({tracked})");
}

#[test]
fn tracked_frames_stay_allocation_free_on_a_defect_heavy_scenario() {
    // The defect-heavy fleet scenario (hot pixels stuck bright + per-row
    // keyed noise) is the adversarial input for the tracked path: extra
    // high-contrast features and row-correlated noise must not push any
    // buffer past its warmed high-water mark mid-sequence. Frames come
    // from the scenario generator itself, so this holds the contract on
    // exactly what the scenario benchmark measures.
    use hirise::temporal::{TrackerState, TrackingPipeline};
    use hirise::{FrameKind, TemporalConfig};
    use hirise_scene::{ScenarioGenerator, ScenarioSpec};

    let temporal =
        TemporalConfig::default().keyframe_interval(4).drift_threshold(1.0).min_track_iou(0.2);
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(192, 144)
        .pooling(2)
        .sensor(SensorConfig { noise_rng: NoiseRngMode::Keyed, ..Default::default() })
        .detector(detector)
        .max_rois(4)
        .roi_margin(2)
        .build()
        .unwrap();
    let tracker = TrackingPipeline::new(config, temporal).unwrap();
    let frames = ScenarioGenerator::new(ScenarioSpec::defects(), 192, 144, 0x5CE2).images(8);
    let mut state = TrackerState::new();
    let mut scratch = PipelineScratch::new();

    for _ in 0..2 {
        for frame in &frames {
            tracker.run_frame(frame, &mut state, &mut scratch).unwrap();
        }
    }

    let mut tracked = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let mut kind = FrameKind::Keyframe;
        let count = allocations_during(|| {
            kind = tracker.run_frame(frame, &mut state, &mut scratch).unwrap().kind;
        });
        if kind == FrameKind::Tracked {
            tracked += 1;
            assert_eq!(count, 0, "frame {i}: tracked defect frame allocated {count} times");
        }
    }
    assert!(tracked >= 4, "too few tracked frames measured ({tracked})");
}

#[test]
fn legacy_path_allocation_count_is_documented() {
    let pipeline = pipeline();
    let frame = scene(192, 144, 0);
    // One throwaway run so lazy one-time setup doesn't skew the count.
    pipeline.run(&frame).unwrap();
    let count = allocations_during(|| {
        pipeline.run(&frame).unwrap();
    });
    // The allocating wrapper rebuilds the sensor planes, pooled image,
    // feature stack, candidate buffers, and ROI crops every frame. The
    // exact figure varies with scene content; the point of record is the
    // contrast with the scratch path's zero.
    println!("legacy run(): {count} heap allocations for one 192x144 frame");
    assert!(
        count > 50,
        "legacy path unexpectedly lean ({count} allocations) — \
         update the scratch-vs-legacy documentation"
    );
}

#[test]
fn detector_scratch_alone_is_allocation_free() {
    use hirise_detect::{Detector, DetectorScratch};
    use hirise_imaging::{color, Image};

    let detector = Detector::default();
    let rgb: Image = scene(96, 96, 0).into();
    let gray: Image = color::to_gray(&rgb).into();
    let mut scratch = DetectorScratch::new();
    // Warm up both colour modes, then alternating them must stay
    // allocation-free (the saturation table is retained across gray
    // frames rather than dropped).
    detector.detect_with_scratch(&rgb, &mut scratch);
    detector.detect_with_scratch(&gray, &mut scratch);
    for image in [&rgb, &gray, &rgb, &gray] {
        let count = allocations_during(|| {
            detector.detect_with_scratch(image, &mut scratch);
        });
        assert_eq!(count, 0, "detector scratch path allocated {count} times");
    }
}

#[test]
fn serve_engine_steady_state_is_allocation_free_per_tick() {
    // The serve layer's tentpole memory claim: a warmed engine serving
    // clip-backed sessions at constant shed level runs whole tick
    // cycles — retire scan, load/shed computation, arrivals into the
    // bounded queues, and round-robin frame serving — without touching
    // the heap. Frames are borrowed from the clips (Cow::Borrowed), the
    // queues and latency reservoirs are preallocated rings, and the
    // engine reuses one PipelineScratch across all sessions.
    use hirise::TemporalConfig;
    use hirise_serve::{FrameSource, ServeConfig, ServeEngine, SessionSpec};

    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let pipeline = HiriseConfig::builder(96, 72)
        .pooling(2)
        .sensor(SensorConfig::default())
        .detector(detector)
        .max_rois(4)
        .roi_margin(2)
        .build()
        .unwrap();
    // Drift disabled and the fleet far below rated load: every measured
    // tick serves at shed level 0, so no mid-measurement policy swap
    // rebuilds a pipeline.
    let config = ServeConfig::new(pipeline)
        .temporal(TemporalConfig::default().keyframe_interval(4).drift_threshold(1.0))
        .rated_sessions(16)
        .max_sessions(16);
    let mut engine = ServeEngine::new(config).unwrap();
    for s in 0..2u32 {
        // Sessions far longer than the test: nothing retires (retiring
        // legitimately allocates its report) and the clip cycles.
        let spec = SessionSpec::default().name(format!("alloc{s}")).frames(10_000);
        let frames: Vec<RgbImage> = (0..8).map(|i| scene(96, 72, 4 * s + i)).collect();
        engine.admit(spec, FrameSource::Frames(frames)).unwrap();
    }

    // Warm-up: two full clip cycles per session grow every buffer (ROI
    // crop pool pairings included) to its high-water capacity.
    for _ in 0..16 {
        engine.tick();
        engine.serve(u64::MAX).unwrap();
    }

    // One frame per session per tick from tick 16 on: the served frame
    // index equals the tick index, so ticks not on the keyframe cadence
    // serve tracked frames only.
    for tick in 16u64..28 {
        let count = allocations_during(|| {
            engine.tick();
            engine.serve(u64::MAX).unwrap();
        });
        if tick % 4 != 0 {
            assert_eq!(count, 0, "tick {tick}: tracked-frame serve cycle allocated {count} times");
        }
    }
    let summary = engine.summary();
    assert_eq!(summary.frames, 2 * 28, "both sessions should have served one frame per tick");
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.max_shed_level, 0, "an unloaded fleet must not shed");
}
