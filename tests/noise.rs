//! Integration tests of the counter-based position-keyed noise path
//! (verification layers 2–3 for the `NoiseRngMode` tentpole): statistical
//! quality of the Ziggurat sampler against the retained Box–Muller
//! reference, key independence across adjacent sites, and the
//! order-independence guarantees — row-sharded keyed capture/pool is
//! bit-identical to the single-threaded path, and noise modes agree
//! exactly when no noise is drawn.

use hirise::{
    ColorMode, HiriseConfig, HirisePipeline, NoiseRngMode, Rect, RgbImage, Sensor, SensorConfig,
};
use hirise_imaging::draw;
use hirise_sensor::pooling::gaussian;
use rand::distributions::{fill_normals, NormalSampler};
use rand::rngs::{KeyedRng, StdRng};
use rand::SeedableRng;

/// Mean, variance and 3-sigma tail mass of a sample set.
fn moments(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let tail = samples.iter().filter(|x| x.abs() > 3.0).count() as f64 / n;
    (mean, var, tail)
}

#[test]
fn ziggurat_moments_match_the_box_muller_reference() {
    const N: usize = 200_000;
    // Ziggurat over the keyed generator (the keyed-mode draw), batched
    // through the public fill API.
    let mut zig = vec![0.0f64; N];
    let mut rng = KeyedRng::seed_from_u64(0xA11CE);
    fill_normals(&mut rng, &mut zig);
    // The retained Box–Muller reference over the sequential generator.
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let bm: Vec<f64> = (0..N).map(|_| gaussian(&mut rng)).collect();

    let (zm, zv, zt) = moments(&zig);
    let (bm_m, bm_v, bm_t) = moments(&bm);
    // Both samplers target N(0, 1); their sample moments must agree with
    // the distribution (and therefore each other) within sampling error.
    for (label, mean, var, tail) in [("ziggurat", zm, zv, zt), ("box-muller", bm_m, bm_v, bm_t)] {
        assert!(mean.abs() < 0.01, "{label} mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "{label} variance {var}");
        assert!((tail - 0.0027).abs() < 0.0012, "{label} 3-sigma tail {tail}");
    }
    assert!((zm - bm_m).abs() < 0.02, "means diverge: {zm} vs {bm_m}");
    assert!((zv - bm_v).abs() < 0.04, "variances diverge: {zv} vs {bm_v}");
}

#[test]
fn adjacent_site_streams_are_decorrelated() {
    const N: usize = 100_000;
    let sampler = NormalSampler::new();
    let key = KeyedRng::derive_key(0x5EED, 0);
    let draw = |site: u64| sampler.sample(&mut KeyedRng::for_stream(key, site));
    // Pearson correlation between each site's draw and its neighbour's.
    let xs: Vec<f64> = (0..N as u64).map(draw).collect();
    let mut num = 0.0;
    let mut den_a = 0.0;
    let mut den_b = 0.0;
    for pair in xs.windows(2) {
        num += pair[0] * pair[1];
        den_a += pair[0] * pair[0];
        den_b += pair[1] * pair[1];
    }
    let r = num / (den_a.sqrt() * den_b.sqrt());
    assert!(r.abs() < 0.02, "adjacent sites correlate: r = {r}");
}

fn scene_with_objects(w: u32, h: u32) -> RgbImage {
    let mut img = RgbImage::from_fn(w, h, |_, _| (0.35, 0.35, 0.35));
    for (i, (ox, oy)) in [(w / 6, h / 5), (w / 2, h / 3)].into_iter().enumerate() {
        let obj = Rect::new(ox, oy, w / 6 + 2 * i as u32, h / 4);
        draw::fill_rect_rgb(&mut img, obj, (0.9, 0.4, 0.2));
        let [pr, _, _] = img.planes_mut();
        draw::fill_stripes(pr, obj, 2, 0.95, 0.55);
    }
    img
}

fn pipeline(shards: u32, mode: NoiseRngMode) -> HirisePipeline {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(96, 64)
        .pooling(2)
        .detector(detector)
        .max_rois(4)
        .noise_rng(mode)
        .sensor_shards(shards)
        .build()
        .unwrap();
    HirisePipeline::new(config)
}

#[test]
fn row_sharded_keyed_pipeline_is_bit_identical_for_1_2_4_shards() {
    // The order-independence acceptance test: the full noisy frame path
    // (capture, fused pool + digitise, detection, ROI readout) produces
    // the same bits whether the keyed rows are computed on one thread or
    // sharded across 2 or 4 workers.
    let scene = scene_with_objects(96, 64);
    let reference = pipeline(1, NoiseRngMode::Keyed);
    let expected = reference.run(&scene).unwrap();
    assert!(!expected.rois.is_empty(), "scene produced no ROIs — the test would be vacuous");
    for shards in [2u32, 4] {
        let run = pipeline(shards, NoiseRngMode::Keyed).run(&scene).unwrap();
        assert_eq!(run.pooled_image, expected.pooled_image, "pooled image at {shards} shards");
        assert_eq!(run.detections, expected.detections, "detections at {shards} shards");
        assert_eq!(run.rois, expected.rois, "rois at {shards} shards");
        assert_eq!(run.roi_images, expected.roi_images, "roi crops at {shards} shards");
        assert_eq!(run.report, expected.report, "report at {shards} shards");
    }
}

#[test]
fn noise_modes_agree_exactly_when_no_noise_is_drawn() {
    let scene = scene_with_objects(96, 64);
    let mut runs = Vec::new();
    for mode in [NoiseRngMode::Sequential, NoiseRngMode::Keyed] {
        let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        let config = HiriseConfig::builder(96, 64)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .noise_rng(mode)
            .build()
            .unwrap();
        runs.push(HirisePipeline::new(config).run(&scene).unwrap());
    }
    let (seq, keyed) = (&runs[0], &runs[1]);
    assert_eq!(seq.pooled_image, keyed.pooled_image);
    assert_eq!(seq.rois, keyed.rois);
    assert_eq!(seq.roi_images, keyed.roi_images);
    assert_eq!(seq.report, keyed.report);
}

#[test]
fn keyed_noise_statistics_match_the_sequential_model() {
    // Same physics, different realisation machinery: the pooled captures
    // of the two modes must deviate from the noiseless reference by a
    // comparable amount (noise sigmas are millivolts on a 600 mV swing).
    let scene = scene_with_objects(64, 64);
    let clean = {
        let mut s = Sensor::capture(&scene, SensorConfig::noiseless());
        s.capture_pooled(2, ColorMode::Gray).unwrap().0
    };
    let deviation = |mode: NoiseRngMode| {
        let cfg = SensorConfig { noise_rng: mode, ..SensorConfig::default() };
        let mut s = Sensor::capture(&scene, cfg);
        let (img, _) = s.capture_pooled(2, ColorMode::Gray).unwrap();
        let a = img.as_gray().unwrap().plane();
        let b = clean.as_gray().unwrap().plane();
        hirise_imaging::metrics::mae(a, b).unwrap()
    };
    let seq = deviation(NoiseRngMode::Sequential);
    let keyed = deviation(NoiseRngMode::Keyed);
    assert!(seq < 0.01, "sequential deviation {seq}");
    assert!(keyed < 0.01, "keyed deviation {keyed}");
    assert!(keyed > 0.0, "keyed mode drew no noise at all");
}

#[test]
fn keyed_stream_summary_is_worker_and_shard_invariant() {
    use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};

    // The strengthened Deterministic guarantee: a noisy keyed stream
    // folds to the same bits for every (worker count, shard count)
    // combination.
    let frames: Vec<RgbImage> = (0..6)
        .map(|i| {
            let mut img = scene_with_objects(96, 64);
            let obj = Rect::new(4 + 10 * i, 40, 12, 12);
            draw::fill_rect_rgb(&mut img, obj, (0.2, 0.8, 0.6));
            img
        })
        .collect();
    let reference = StreamExecutor::new(
        pipeline(1, NoiseRngMode::Keyed),
        StreamConfig::default().workers(1).batch_size(2).ordering(StreamOrdering::Deterministic),
    )
    .unwrap()
    .run(&frames)
    .unwrap();
    assert!(reference.aggregate.rois > 0);
    for (workers, shards) in [(2, 1), (4, 1), (1, 2), (2, 2), (4, 4)] {
        let summary = StreamExecutor::new(
            pipeline(shards, NoiseRngMode::Keyed),
            StreamConfig::default()
                .workers(workers)
                .batch_size(2)
                .ordering(StreamOrdering::Deterministic),
        )
        .unwrap()
        .run(&frames)
        .unwrap();
        assert_eq!(summary.frames, reference.frames, "workers={workers} shards={shards}");
        assert_eq!(summary.aggregate, reference.aggregate, "workers={workers} shards={shards}");
        assert_eq!(summary.energy_mj, reference.energy_mj, "workers={workers} shards={shards}");
        assert_eq!(summary.reports, reference.reports, "workers={workers} shards={shards}");
    }
}
