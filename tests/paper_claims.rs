//! The paper's headline numbers, asserted end to end: every quantitative
//! claim this reproduction reproduces is pinned down here so regressions
//! in any substrate crate surface immediately.

use hirise::analytical::AnalyticalModel;
use hirise::{HiriseConfig, Rect};
use hirise_energy::{AdcEnergy, ColorChannels, PoolingEnergy, SystemParams};
use hirise_nn::zoo;

/// Table-3-style head ROIs: 16 disjoint 112x112 boxes on a 2560x1920 frame.
fn head_rois() -> Vec<Rect> {
    (0..16)
        .map(|i| Rect::new(150 * (i as u32 % 8) + 30, 200 + 500 * (i as u32 / 8), 112, 112))
        .collect()
}

#[test]
fn abstract_claim_17_7x_energy_and_transfer_reduction() {
    // "achieves up to 17.7x reduction in data transfer and energy
    // consumption" — the 2560x1920 / k=8 / 16-head-ROI configuration.
    let config = HiriseConfig::paper_reference();
    let model = AnalyticalModel::new(&config, &head_rois());
    assert!((model.transfer_reduction() - 17.7).abs() < 0.3, "{}", model.transfer_reduction());
    assert!((model.conversion_reduction() - 17.7).abs() < 0.3);
}

#[test]
fn table3_last_row_transfer_833_kb() {
    let config = HiriseConfig::paper_reference();
    let model = AnalyticalModel::new(&config, &head_rois());
    let kb = model.hirise().total_transfer_kb();
    assert!((kb - 833.0).abs() < 5.0, "transfer {kb} kB");
    let base_kb = model.conventional().total_transfer_kb();
    assert!((base_kb - 14746.0).abs() < 10.0, "baseline {base_kb} kB");
}

#[test]
fn table3_energy_column_reproduced() {
    // Baseline 1.843 mJ; HiRISE 0.104 mJ at 2560x1920.
    let adc = AdcEnergy::PAPER_45NM_8BIT;
    let pool = PoolingEnergy::PAPER_45NM;
    let params =
        SystemParams::paper_default(2560, 1920, 8).with_rois(16, 16 * 112 * 112, 16 * 112 * 112);
    let base = params.conventional().sensor_energy_mj(&adc, &pool);
    let hirise = params.hirise_total().sensor_energy_mj(&adc, &pool);
    assert!((base - 1.843).abs() < 0.01, "baseline {base} mJ");
    assert!((hirise - 0.104).abs() < 0.01, "hirise {hirise} mJ");
    // Smaller arrays from the same column.
    let params_640 =
        SystemParams::paper_default(640, 480, 2).with_rois(16, 16 * 28 * 28, 16 * 28 * 28);
    let e640 = params_640.hirise_total().sensor_energy_mj(&adc, &pool);
    assert!((e640 - 0.034).abs() < 0.003, "640x480 hirise {e640} mJ");
}

#[test]
fn fig7_reductions_and_shares() {
    // Crowdhuman calibration: sum ≈ 27 % of frame.
    let frame = 2560u64 * 1920;
    let with_stats = |k: u64| {
        SystemParams::paper_default(2560, 1920, k).with_rois(
            16,
            (frame as f64 * 0.271) as u64,
            (frame as f64 * 0.092) as u64,
        )
    };
    for (k, reduction, share) in [(2u64, 1.9, 0.48), (4, 3.0, 0.19), (8, 3.5, 0.05)] {
        let p = with_stats(k);
        let base = p.conventional().total_transfer_bits() as f64;
        let total = p.hirise_total().total_transfer_bits() as f64;
        let d1 = p.hirise_stage1().transfer_bits_s2p as f64;
        assert!((base / total - reduction).abs() < 0.25, "k={k} reduction {}", base / total);
        assert!((d1 / total - share).abs() < 0.04, "k={k} share {}", d1 / total);
    }
}

#[test]
fn fig8_pooling_circuit_energy_negligible() {
    // "between 1.71 nJ and 91.4 nJ ... several orders of magnitude smaller
    // than ADC conversion".
    let pool = PoolingEnergy::PAPER_45NM;
    let adc = AdcEnergy::PAPER_45NM_8BIT;
    let lo = SystemParams {
        stage1_color: ColorChannels::Gray,
        ..SystemParams::paper_default(2560, 1920, 8)
    };
    let hi = SystemParams::paper_default(2560, 1920, 2);
    let e_lo = pool.energy_joules(lo.hirise_stage1().pooling_outputs) * 1e9;
    let e_hi = pool.energy_joules(hi.hirise_stage1().pooling_outputs) * 1e9;
    assert!((1.0..3.0).contains(&e_lo), "low end {e_lo} nJ");
    assert!((80.0..100.0).contains(&e_hi), "high end {e_hi} nJ");
    let adc_energy = adc.energy_joules(hi.hirise_stage1().conversions) * 1e9;
    assert!(adc_energy / e_hi > 1_000.0);
}

#[test]
fn section42_model_footprints() {
    // "for the stage 1 model, we find 337kB/296kB peak SRAM/flash usage".
    let det = zoo::mcunet_v2_detector(320, 240);
    let peak_kb = det.peak_activation_bytes() as f64 / 1024.0;
    let flash_kb = det.flash_bytes(1) as f64 / 1024.0;
    assert!((peak_kb - 337.0).abs() < 15.0, "stage-1 peak {peak_kb}");
    assert!((flash_kb - 296.0).abs() < 30.0, "stage-1 flash {flash_kb}");

    // Both stage models fit the 512 kB STM32H743 SRAM budget; total flash
    // fits 2 MB.
    let cls = zoo::mcunet_v2_classifier(112);
    assert!(det.peak_activation_bytes() < 512 * 1024);
    assert!(cls.peak_activation_bytes() < 512 * 1024);
    assert!(det.flash_bytes(1) + cls.flash_bytes(1) < 2 * 1024 * 1024);
}

#[test]
fn table3_sram_column_reproduced() {
    // HiRISE SRAM = 320x240 RGB stage-1 image + stage-2 peak act:
    // 237 kB at 320x240 up to ~398 kB at 2560x1920 for MCUNetV2.
    let stage1_img_kb = 320.0 * 240.0 * 3.0 / 1024.0;
    let small =
        stage1_img_kb + zoo::mcunet_v2_classifier(14).peak_activation_bytes() as f64 / 1024.0;
    let large =
        stage1_img_kb + zoo::mcunet_v2_classifier(112).peak_activation_bytes() as f64 / 1024.0;
    assert!((small - 237.0).abs() < 15.0, "small-array SRAM {small} kB");
    assert!((large - 398.0).abs() < 20.0, "large-array SRAM {large} kB");
    // The paper's 37.5x SRAM reduction at the largest array.
    let baseline = (2560.0 * 1920.0 * 3.0) / 1024.0
        + zoo::mcunet_v2_classifier(112).peak_activation_bytes() as f64 / 1024.0;
    let reduction = baseline / large;
    assert!((reduction - 37.5).abs() < 2.0, "SRAM reduction {reduction}x");
}

#[test]
fn analog_circuit_tracks_average_within_millivolts() {
    // Fig. 5's "follows the average of the inputs precisely", quantified.
    let a = hirise_analog::testbench::fig5a().unwrap();
    assert!(a.max_tracking_error < 0.03, "fig5a error {}", a.max_tracking_error);
    let b = hirise_analog::testbench::fig5b().unwrap();
    assert!(b.settled_tracking_error < 0.02, "fig5b settled error {}", b.settled_tracking_error);
}
