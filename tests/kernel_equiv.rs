//! Equivalence of the vectorized (row-slice / flat-slice) kernels against
//! retained naive per-pixel reference implementations.
//!
//! Most kernels are **bit-identical** to their references: the rewrite
//! only removed 2-D index arithmetic without touching the order of the
//! floating-point operations. The one documented exception is
//! `ops::avg_pool_into`, whose row-accumulate structure reassociates the
//! window sum (partial sums per source row); there the contract is a
//! ≤ 1e-6 absolute envelope. Sizes deliberately include odd dimensions,
//! `k ∈ {1, 2, 4, 8}`, and 1-pixel-tall/-wide planes.

use hirise_detect::{features, IntegralImage};
use hirise_imaging::{color, ops, Plane, Rect, RgbImage};
use proptest::prelude::*;

/// Deterministic pseudo-random plane with values spread across `0..1`.
fn plane_from_seed(w: u32, h: u32, seed: u32) -> Plane {
    Plane::from_fn(w, h, |x, y| {
        let v = x.wrapping_mul(31).wrapping_add(y.wrapping_mul(17)).wrapping_add(seed * 101);
        (v % 257) as f32 / 257.0
    })
}

fn rgb_from_seed(w: u32, h: u32, seed: u32) -> RgbImage {
    RgbImage::from_fn(w, h, |x, y| {
        let v = |m: u32| ((x * m + y * (m + 2) + seed * 7) % 97) as f32 / 97.0;
        (v(13), v(5), v(3))
    })
}

// ---- retained naive reference implementations -------------------------

/// Reference `k×k` average pool: fully sequential per-window sum.
fn avg_pool_naive(plane: &Plane, k: u32) -> Plane {
    let (w, h) = plane.dimensions();
    let norm = 1.0 / (k as f32 * k as f32);
    Plane::from_fn(w / k, h / k, |ox, oy| {
        let mut acc = 0.0f32;
        for dy in 0..k {
            for dx in 0..k {
                acc += plane.get(ox * k + dx, oy * k + dy);
            }
        }
        acc * norm
    })
}

/// Reference weighted luma: per-pixel triple product.
fn weighted_gray_naive(img: &RgbImage, (wr, wg, wb): (f32, f32, f32)) -> Plane {
    Plane::from_fn(img.width(), img.height(), |x, y| {
        let (r, g, b) = img.pixel(x, y);
        r * wr + g * wg + b * wb
    })
}

/// Reference saturation: per-pixel max − min.
fn saturation_naive(img: &RgbImage) -> Plane {
    Plane::from_fn(img.width(), img.height(), |x, y| {
        let (r, g, b) = img.pixel(x, y);
        r.max(g).max(b) - r.min(g).min(b)
    })
}

/// Reference gradient magnitude: per-pixel edge-clamped central
/// differences.
fn gradient_naive(luma: &Plane) -> Plane {
    let (w, h) = luma.dimensions();
    Plane::from_fn(w, h, |x, y| {
        let xm = luma.get(x.saturating_sub(1), y);
        let xp = luma.get((x + 1).min(w - 1), y);
        let ym = luma.get(x, y.saturating_sub(1));
        let yp = luma.get(x, (y + 1).min(h - 1));
        ((xp - xm).abs() + (yp - ym).abs()) * 0.5
    })
}

/// Reference integral table via the generic per-pixel closure path (the
/// row-sliced `recompute` must match it bit for bit).
fn integral_naive(plane: &Plane, squared: bool) -> IntegralImage {
    IntegralImage::from_fn(plane.width(), plane.height(), |x, y| {
        let v = plane.get(x, y) as f64;
        if squared {
            v * v
        } else {
            v
        }
    })
}

// ---- equivalence properties -------------------------------------------

/// Dimension strategy covering odd sizes and 1-pixel-tall/-wide planes,
/// while staying `k`-divisible where the kernel demands it.
fn arb_dims() -> impl Strategy<Value = (u32, u32)> {
    (1u32..40, 1u32..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn avg_pool_within_reassociation_envelope(
        (w, h) in arb_dims(),
        k in prop::sample::select(vec![1u32, 2, 4, 8]),
        seed in 0u32..1000,
    ) {
        // Make the dimensions divisible by k (the kernel's contract).
        let (w, h) = (w * k, h * k);
        let plane = plane_from_seed(w, h, seed);
        let naive = avg_pool_naive(&plane, k);
        let mut fast = Plane::new(1, 1);
        ops::avg_pool_into(&plane, k, &mut fast).expect("k divides dims");
        prop_assert_eq!(fast.dimensions(), naive.dimensions());
        for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
            // Reassociated partial sums: ≤ 1e-6 absolute, not bit-equal.
            prop_assert!((a - b).abs() <= 1e-6, "avg_pool diverged: {a} vs {b} (k={k})");
        }
    }

    #[test]
    fn luma_and_saturation_bit_identical((w, h) in arb_dims(), seed in 0u32..1000) {
        let rgb = rgb_from_seed(w, h, seed);
        let mut fast = Plane::new(1, 1);
        for weights in [color::MEAN_WEIGHTS, color::BT601_WEIGHTS] {
            color::weighted_gray_into(&rgb, weights, &mut fast);
            prop_assert_eq!(fast.as_slice(), weighted_gray_naive(&rgb, weights).as_slice());
        }
        color::saturation_into(&rgb, &mut fast);
        prop_assert_eq!(fast.as_slice(), saturation_naive(&rgb).as_slice());
    }

    #[test]
    fn gradient_bit_identical((w, h) in arb_dims(), seed in 0u32..1000) {
        let luma = plane_from_seed(w, h, seed);
        let mut fast = Plane::new(1, 1);
        features::gradient_magnitude_into(&luma, &mut fast);
        prop_assert_eq!(fast.as_slice(), gradient_naive(&luma).as_slice());
    }

    #[test]
    fn integral_recompute_bit_identical((w, h) in arb_dims(), seed in 0u32..1000) {
        let plane = plane_from_seed(w, h, seed);
        let mut fast = IntegralImage::default();
        fast.recompute(&plane);
        let naive = integral_naive(&plane, false);
        let mut fast_sq = IntegralImage::default();
        fast_sq.recompute_squared(&plane);
        let naive_sq = integral_naive(&plane, true);
        for rect in [
            Rect::new(0, 0, w, h),
            Rect::new(w / 2, h / 2, w.div_ceil(2), h.div_ceil(2)),
            Rect::new(w.saturating_sub(1), h.saturating_sub(1), 1, 1),
        ] {
            // Identical summation order ⇒ identical table entries, so the
            // query results must be bit-equal, not merely close.
            prop_assert_eq!(fast.sum(rect), naive.sum(rect));
            prop_assert_eq!(fast_sq.sum(rect), naive_sq.sum(rect));
        }
    }
}

/// The pooled sensor capture must stay bit-identical across the row-slice
/// rewrite of the charge-sharing sums — this pins the whole stage-1 path
/// (fixed-pattern fill, pooling, ADC) against the PR 2 behaviour captured
/// by the goldens.
#[test]
fn one_pixel_tall_and_wide_planes_survive_every_kernel() {
    for (w, h) in [(1u32, 1u32), (1, 17), (17, 1), (2, 1), (1, 2)] {
        let plane = plane_from_seed(w, h, 3);
        let mut out = Plane::new(1, 1);
        features::gradient_magnitude_into(&plane, &mut out);
        assert_eq!(out.as_slice(), gradient_naive(&plane).as_slice(), "{w}x{h}");
        let mut ii = IntegralImage::default();
        ii.recompute(&plane);
        assert_eq!(
            ii.sum(Rect::new(0, 0, w, h)),
            integral_naive(&plane, false).sum(Rect::new(0, 0, w, h)),
            "{w}x{h}"
        );
        let rgb = rgb_from_seed(w, h, 5);
        color::saturation_into(&rgb, &mut out);
        assert_eq!(out.as_slice(), saturation_naive(&rgb).as_slice(), "{w}x{h}");
        ops::avg_pool_into(&plane, 1, &mut out).expect("k=1 always divides");
        assert_eq!(out.as_slice(), plane.as_slice(), "{w}x{h} identity pool");
    }
}
