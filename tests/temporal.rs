//! Temporal-pipeline integration tests (verification layer 7).
//!
//! Covers the cross-frame contracts that unit tests cannot see:
//! sequence-mode bit-identity across worker *and* sensor-shard counts,
//! the tracked-mode data-movement savings over per-frame detection, and
//! the tracking-quality floor (mean tracked-ROI IoU against the
//! generator's ground-truth tracks) on the committed benchmark scene.

use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};
use hirise::temporal::{TrackerState, TrackingPipeline};
use hirise::{HiriseConfig, HirisePipeline, PipelineScratch, TemporalConfig};
use hirise_imaging::RgbImage;
use hirise_scene::{VideoGenerator, VideoSpec};

const W: u32 = 128;
const H: u32 = 96;

/// Small tracked-pipeline configuration (keyed noise, the default).
fn config(shards: u32) -> HiriseConfig {
    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    HiriseConfig::builder(W, H)
        .pooling(2)
        .detector(detector)
        .max_rois(4)
        .roi_margin(2)
        .sensor_shards(shards)
        .build()
        .unwrap()
}

fn temporal() -> TemporalConfig {
    TemporalConfig::default().keyframe_interval(3)
}

/// Three short generated videos with distinct seeds.
fn sequences(frames: u32) -> Vec<Vec<RgbImage>> {
    [7u64, 19, 42]
        .into_iter()
        .map(|seed| VideoGenerator::new(VideoSpec::surveillance(), W, H, seed).images(frames))
        .collect()
}

fn executor(shards: u32, workers: usize) -> StreamExecutor {
    StreamExecutor::new(
        HirisePipeline::new(config(shards)),
        StreamConfig::default().workers(workers).ordering(StreamOrdering::Deterministic),
    )
    .unwrap()
}

#[test]
fn sequence_mode_is_bit_identical_across_worker_counts() {
    let seqs = sequences(7);
    let base = executor(1, 1).run_sequences(&seqs, &temporal()).unwrap();
    assert_eq!(base.sequences.len(), 3);
    assert_eq!(base.frames(), 21);
    // Every sequence did real work and produced per-frame reports.
    for s in &base.sequences {
        assert_eq!(s.reports.len(), 7);
        assert!(s.keyframes >= 3, "interval 3 over 7 frames schedules ≥ 3 keyframes");
    }
    for workers in [2, 4] {
        let other = executor(1, workers).run_sequences(&seqs, &temporal()).unwrap();
        // SequenceStreamSummary equality ignores wall time only, so this
        // checks counters, ROI counts, transfer bits, frame-ordered
        // energy folds and every per-frame report bit-for-bit.
        assert_eq!(other, base, "sequence mode diverged at {workers} workers");
    }
}

#[test]
fn sequence_mode_is_bit_identical_across_shard_counts() {
    // Keyed noise is position-pure, so splitting the capture and pooled
    // readout across row shards must not move a single bit of the
    // tracked sequence output — at any worker count on top.
    let seqs = sequences(6);
    let base = executor(1, 2).run_sequences(&seqs, &temporal()).unwrap();
    for shards in [2u32, 4] {
        for workers in [1usize, 3] {
            let other = executor(shards, workers).run_sequences(&seqs, &temporal()).unwrap();
            assert_eq!(
                other, base,
                "sequence mode diverged at {shards} shards / {workers} workers"
            );
        }
    }
}

#[test]
fn tracked_sequences_move_less_data_than_per_frame_detection() {
    // The temporal premise at the accounting level: a tracked sequence
    // ships strictly less sensor traffic than running the full
    // two-stage pipeline on every frame, because non-keyframes skip the
    // stage-1 pooled readout entirely.
    let video = VideoGenerator::new(VideoSpec::surveillance(), W, H, 31);
    let frames = video.images(9);

    let per_frame = HirisePipeline::new(config(1));
    let mut scratch = PipelineScratch::new();
    let per_frame_bits: Vec<u64> = frames
        .iter()
        .map(|f| per_frame.run_with_scratch(f, &mut scratch).unwrap().total_transfer_bits())
        .collect();

    let tracker = TrackingPipeline::new(config(1), temporal()).unwrap();
    let mut state = TrackerState::new();
    let mut tracked_frames = 0u64;
    let mut tracked_total = 0u64;
    for (i, frame) in frames.iter().enumerate() {
        let r = tracker.run_frame(frame, &mut state, &mut scratch).unwrap();
        tracked_total += r.report.total_transfer_bits();
        if !r.kind.ran_detection() {
            tracked_frames += 1;
            // Frame-level claim: a tracked frame ships strictly less
            // than the per-frame pipeline did on the very same frame
            // (its stage-2 set is comparable; the whole stage-1 pooled
            // readout is gone).
            assert!(
                r.report.total_transfer_bits() < per_frame_bits[i],
                "tracked frame {i} moved {} bits ≥ per-frame {}",
                r.report.total_transfer_bits(),
                per_frame_bits[i]
            );
        }
    }
    assert!(tracked_frames >= 4, "too few tracked frames to compare ({tracked_frames})");
    let per_frame_total: u64 = per_frame_bits.iter().sum();
    assert!(
        tracked_total < per_frame_total,
        "tracked sequence moved {tracked_total} bits ≥ per-frame {per_frame_total}"
    );
}

#[test]
fn tracking_quality_holds_on_the_reference_video() {
    // The committed benchmark scene (video_stages / BENCH_temporal.json)
    // must keep its accuracy floor: mean over tracked-mode ROIs of each
    // ROI's best IoU against the ground-truth boxes ≥ 0.5. One pass over
    // a 16-frame prefix of the reference sequence.
    use hirise_bench::video::{pipeline_config, reference_seed, VideoBenchConfig};

    let bench = VideoBenchConfig::default();
    let video =
        VideoGenerator::new(VideoSpec::surveillance(), bench.width, bench.height, reference_seed());
    let tracker = TrackingPipeline::new(
        pipeline_config(&bench),
        TemporalConfig::default().keyframe_interval(bench.keyframe_interval),
    )
    .unwrap();
    let mut state = TrackerState::new();
    let mut scratch = PipelineScratch::new();
    let (mut iou_sum, mut rois) = (0.0f64, 0u64);
    for frame in video.frames(16) {
        tracker.run_frame(&frame.image, &mut state, &mut scratch).unwrap();
        for r in scratch.rois() {
            iou_sum += frame.objects.iter().map(|o| r.iou(&o.bbox)).fold(0.0, f64::max);
            rois += 1;
        }
    }
    assert!(rois > 0, "the reference video produced no ROIs");
    let mean = iou_sum / rois as f64;
    assert!(mean >= 0.5, "mean tracked-ROI IoU {mean:.3} fell below the 0.5 floor");
    // And the policy actually tracked: most frames skipped detection.
    assert!(state.tracked_frames() > state.keyframes() + state.drift_refreshes());
}

#[test]
fn sequential_noise_mode_tracks_too() {
    // The temporal path is mode-agnostic: the legacy sequential noise
    // stream must produce a valid (if differently-noised) tracked
    // sequence, deterministic across repeats.
    let mut cfg = config(1);
    cfg.sensor.noise_rng = hirise::NoiseRngMode::Sequential;
    let video = VideoGenerator::new(VideoSpec::surveillance(), W, H, 11);
    let frames = video.images(6);
    let tracker = TrackingPipeline::new(cfg, temporal()).unwrap();
    let run = |scratch: &mut PipelineScratch| {
        let mut state = TrackerState::new();
        frames
            .iter()
            .map(|f| tracker.run_frame(f, &mut state, scratch).unwrap())
            .collect::<Vec<_>>()
    };
    let mut scratch = PipelineScratch::new();
    let a = run(&mut scratch);
    let b = run(&mut scratch);
    assert_eq!(a, b);
    assert!(a.iter().any(|r| !r.kind.ran_detection()), "no frame was tracked");
}

#[test]
fn sequence_and_still_executors_share_one_executor() {
    // The same executor instance serves both modes: still frames via
    // run(), sequences via run_sequences(); neither perturbs the other.
    let seqs = sequences(5);
    let executor = executor(1, 2);
    let stills: Vec<RgbImage> = seqs[0].clone();
    let still_a = executor.run(&stills).unwrap();
    let video_summary = executor.run_sequences(&seqs, &temporal()).unwrap();
    let still_b = executor.run(&stills).unwrap();
    assert_eq!(still_a.reports, still_b.reports);
    assert_eq!(video_summary.sequences.len(), 3);
    // Still mode re-detects every frame; sequence mode must not.
    assert!(video_summary.detection_fraction() < 1.0);
}
