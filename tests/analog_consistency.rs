//! Traceability tests: the behavioural sensor model must stay consistent
//! with the transistor-level analog simulation it was extracted from.

use hirise_analog::behavior::{calibrated, PoolingBehavior};
use hirise_analog::pooling::PoolingCircuit;
use hirise_sensor::PoolingConfig;

#[test]
fn sensor_defaults_match_fresh_transistor_fit() {
    // The constants baked into hirise-sensor's default PoolingConfig are
    // re-derived here from the 12-input circuit; drift in either crate
    // fails this test.
    let circuit = PoolingCircuit::builder(12).build().unwrap();
    let fit = PoolingBehavior::fit(&circuit, (0.3, 0.9), 13).unwrap();
    assert!((fit.gain - calibrated::GAIN_12).abs() < 5e-4, "gain drifted to {}", fit.gain);
    assert!((fit.offset - calibrated::OFFSET_12).abs() < 5e-4, "offset drifted to {}", fit.offset);
    assert!(fit.max_residual <= calibrated::MAX_RESIDUAL_12 * 1.5);

    let sensor_cfg = PoolingConfig::default();
    assert_eq!(sensor_cfg.gain, calibrated::GAIN_12);
    assert_eq!(sensor_cfg.offset, calibrated::OFFSET_12);
}

#[test]
fn behavioural_transfer_matches_circuit_within_residual() {
    // The sensor's deterministic transfer (line + bow) stays within the
    // fitted residual envelope of the true circuit output.
    let circuit = PoolingCircuit::builder(12).build().unwrap();
    let cfg = PoolingConfig::default();
    for i in 0..=12 {
        let v = 0.3 + 0.6 * f64::from(i) / 12.0;
        let truth = circuit.dc_average(&[v; 12]).unwrap();
        let model = cfg.transfer(v, 0.3, 0.9);
        assert!((truth - model).abs() < 4e-3, "at {v} V: circuit {truth} vs behavioural {model}");
    }
}

#[test]
fn gain_varies_little_with_input_count() {
    // The sensor uses the 12-input fit for every pooling size; verify the
    // fitted gain moves by < 5 % between 4 and 48 inputs so that reuse is
    // sound (the inverse calibration cancels the shared part anyway).
    let fit4 =
        PoolingBehavior::fit(&PoolingCircuit::builder(4).build().unwrap(), (0.3, 0.9), 9).unwrap();
    let fit48 =
        PoolingBehavior::fit(&PoolingCircuit::builder(48).build().unwrap(), (0.3, 0.9), 9).unwrap();
    let rel = (fit4.gain - fit48.gain).abs() / fit48.gain;
    assert!(rel < 0.05, "gain varies {rel} between 4 and 48 inputs");
}

#[test]
fn recovered_mean_accuracy_scales_to_192_inputs() {
    // The paper's "extended to 192 inputs ... flawless performance" claim,
    // at a reduced input count to keep test time short (the fig5 binary
    // runs the full 192).
    let result = hirise_analog::testbench::extended_dc(48, 3).unwrap();
    assert!(result.max_error < 0.01, "48-input recovered-mean error {} V", result.max_error);
}
