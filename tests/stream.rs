//! Integration tests of the streaming executor: worker-count invariance
//! in deterministic mode, agreement with sequential execution, and the
//! iterator-driven entry point, all over generated surveillance scenes.

use hirise::stream::{StreamConfig, StreamExecutor, StreamOrdering};
use hirise::{HiriseConfig, HirisePipeline, SensorConfig};
use hirise_imaging::RgbImage;
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const W: u32 = 192;
const H: u32 = 144;

fn campus_frames(n: usize, seed: u64) -> Vec<RgbImage> {
    let generator = SceneGenerator::new(DatasetSpec::dhdcampus_like());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| generator.generate(W, H, &mut rng).image).collect()
}

fn pipeline() -> HirisePipeline {
    let config = HiriseConfig::builder(W, H)
        .pooling(4)
        .sensor(SensorConfig::noiseless())
        .max_rois(6)
        .build()
        .unwrap();
    HirisePipeline::new(config)
}

fn deterministic(workers: usize) -> StreamConfig {
    StreamConfig::default().workers(workers).batch_size(3).ordering(StreamOrdering::Deterministic)
}

#[test]
fn one_and_four_workers_aggregate_identically() {
    let frames = campus_frames(16, 11);
    let single = StreamExecutor::new(pipeline(), deterministic(1)).unwrap().run(&frames).unwrap();
    let pooled = StreamExecutor::new(pipeline(), deterministic(4)).unwrap().run(&frames).unwrap();

    assert_eq!(single.frames, 16);
    assert_eq!(pooled.frames, 16);
    // Identical aggregates — including the order-sensitive float fold.
    assert_eq!(single.aggregate, pooled.aggregate);
    assert_eq!(single.energy_mj, pooled.energy_mj);
    assert_eq!(single.reports, pooled.reports);
}

#[test]
fn streamed_reports_match_per_frame_pipeline_runs() {
    let frames = campus_frames(8, 23);
    let reference = pipeline();
    let summary = StreamExecutor::new(pipeline(), deterministic(4)).unwrap().run(&frames).unwrap();

    assert_eq!(summary.reports.len(), frames.len());
    for (frame, streamed) in frames.iter().zip(&summary.reports) {
        let solo = reference.run(frame).unwrap().report;
        assert_eq!(*streamed, solo);
    }
    // The stream observed real work on real scenes.
    assert!(summary.aggregate.conversions > 0);
    assert!(summary.aggregate.rois > 0, "no scene produced any ROI");
}

#[test]
fn iterator_and_slice_entry_points_agree() {
    let frames = campus_frames(10, 37);
    let executor = StreamExecutor::new(pipeline(), deterministic(3)).unwrap();
    let from_slice = executor.run(&frames).unwrap();
    let from_iter = executor.run_stream(frames).unwrap();
    assert_eq!(from_slice.aggregate, from_iter.aggregate);
    assert_eq!(from_slice.energy_mj, from_iter.energy_mj);
    assert_eq!(from_slice.reports, from_iter.reports);
}

#[test]
fn orderings_agree_on_integer_counters_across_worker_counts() {
    // Satellite acceptance check: Arrival and Deterministic fold the same
    // per-frame reports, so every integer counter in the StreamAggregate
    // must be identical for worker counts 1, 2, and 4 on one frame slice
    // (only the float energy fold order may differ between modes).
    let frames = campus_frames(14, 77);
    let reference =
        StreamExecutor::new(pipeline(), deterministic(1)).unwrap().run(&frames).unwrap();
    for workers in [1usize, 2, 4] {
        for ordering in [StreamOrdering::Arrival, StreamOrdering::Deterministic] {
            let summary = StreamExecutor::new(
                pipeline(),
                StreamConfig::default().workers(workers).batch_size(2).ordering(ordering),
            )
            .unwrap()
            .run(&frames)
            .unwrap();
            assert_eq!(summary.frames, reference.frames, "workers={workers} {ordering:?}");
            assert_eq!(summary.aggregate, reference.aggregate, "workers={workers} {ordering:?}");
        }
    }
}

#[test]
fn throughput_mode_keeps_integer_totals() {
    let frames = campus_frames(12, 51);
    let det = StreamExecutor::new(pipeline(), deterministic(4)).unwrap().run(&frames).unwrap();
    let arrival = StreamExecutor::new(
        pipeline(),
        StreamConfig::default().workers(4).batch_size(3).ordering(StreamOrdering::Arrival),
    )
    .unwrap()
    .run(&frames)
    .unwrap();
    assert_eq!(arrival.frames, det.frames);
    assert_eq!(arrival.aggregate, det.aggregate);
}
