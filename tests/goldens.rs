//! Golden-output regression tests (verification layer 5).
//!
//! The `table1` and `fig7` computations are re-run in-process at the
//! paper's reference points and compared against small committed CSVs
//! under `tests/goldens/`. Integer counters (bits, bytes, conversions,
//! box counts) must match **exactly**; floating-point columns (area
//! fractions, reduction factors) get a tight relative tolerance.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test goldens
//! ```
//!
//! then commit the rewritten CSVs and re-run without the variable.

use std::fmt::Write as _;
use std::path::Path;

use hirise::analytical::AnalyticalModel;
use hirise::{HiriseConfig, HirisePipeline, NoiseRngMode, Rect};
use hirise_bench::stats::DatasetRoiStats;
use hirise_energy::{ColorChannels, SystemParams};
use hirise_imaging::{draw, RgbImage};
use hirise_scene::{DatasetSpec, ObjectClass};

/// Relative tolerance for floating-point golden columns.
const FLOAT_RTOL: f64 = 1e-9;

/// Compares `produced` against the committed golden, or rewrites the
/// golden when `UPDATE_GOLDENS` is set. Integer cells compare exactly;
/// cells containing `.` compare as floats within [`FLOAT_RTOL`].
fn check_golden(name: &str, produced: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("goldens dir has a parent")).unwrap();
        std::fs::write(&path, produced).unwrap();
        println!("rewrote {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test goldens",
            path.display()
        )
    });
    let (g_lines, p_lines): (Vec<&str>, Vec<&str>) =
        (golden.lines().collect(), produced.lines().collect());
    assert_eq!(
        g_lines.len(),
        p_lines.len(),
        "{name}: line count changed (golden {} vs produced {})",
        g_lines.len(),
        p_lines.len()
    );
    for (ln, (g, p)) in g_lines.iter().zip(&p_lines).enumerate() {
        let (g_cells, p_cells): (Vec<&str>, Vec<&str>) =
            (g.split(',').collect(), p.split(',').collect());
        assert_eq!(g_cells.len(), p_cells.len(), "{name}:{}: column count changed", ln + 1);
        for (col, (gc, pc)) in g_cells.iter().zip(&p_cells).enumerate() {
            let is_float = gc.contains('.');
            if is_float {
                let (gv, pv): (f64, f64) = (
                    gc.parse()
                        .unwrap_or_else(|_| panic!("{name}:{}: bad golden float {gc}", ln + 1)),
                    pc.parse()
                        .unwrap_or_else(|_| panic!("{name}:{}: bad produced float {pc}", ln + 1)),
                );
                let tol = FLOAT_RTOL * gv.abs().max(1.0);
                assert!(
                    (gv - pv).abs() <= tol,
                    "{name}:{}:{}: float drifted: golden {gv} vs produced {pv}",
                    ln + 1,
                    col + 1
                );
            } else {
                assert_eq!(gc, pc, "{name}:{}:{}: exact cell changed", ln + 1, col + 1);
            }
        }
    }
}

/// The 16 Table-3-style head ROIs the `table1` binary evaluates at the
/// paper's reference configuration.
fn table1_rois() -> Vec<Rect> {
    (0..16)
        .map(|i| Rect::new(150 * (i as u32 % 8) + 40, 300 + 400 * (i as u32 / 8), 112, 112))
        .collect()
}

#[test]
fn table1_reference_point_matches_golden() {
    let config = HiriseConfig::paper_reference();
    let rois = table1_rois();
    let model = AnalyticalModel::new(&config, &rois);

    let mut csv =
        String::from("system,transfer_s2p_bits,transfer_p2s_bits,memory_bytes,conversions\n");
    for b in [model.conventional(), model.stage1(), model.stage2(), model.hirise()] {
        writeln!(
            csv,
            "{},{},{},{},{}",
            b.label, b.transfer_bits_s2p, b.transfer_bits_p2s, b.memory_bytes, b.conversions
        )
        .unwrap();
    }
    writeln!(
        csv,
        "reductions,{:.6},{:.6},{:.6},{}",
        model.transfer_reduction(),
        model.memory_reduction(),
        model.conversion_reduction(),
        model.satisfies_paper_conditions()
    )
    .unwrap();
    check_golden("table1.csv", &csv);
}

#[test]
fn fig7_transfer_table_matches_golden() {
    // Same measurement as the fig7 binary's --quick configuration.
    let stats = DatasetRoiStats::measure(
        &DatasetSpec::crowdhuman_like(),
        Some(ObjectClass::Person),
        8,
        0xF167,
    );
    let mut csv = String::from("dataset,boxes,sum_area_frac,union_area_frac\n");
    writeln!(
        csv,
        "{},{},{:.9},{:.9}",
        stats.dataset, stats.boxes, stats.sum_area_frac, stats.union_area_frac
    )
    .unwrap();
    csv.push_str("n,m,k,baseline_bits,d1_bits,d2_bits,total_bits\n");
    let arrays: [(u64, u64); 5] =
        [(640, 480), (1280, 960), (1600, 1200), (1920, 1440), (2560, 1920)];
    for (n, m) in arrays {
        let (j, sum, union) = stats.at_array(n, m);
        for k in [2u64, 4, 8] {
            let params = SystemParams {
                stage1_color: ColorChannels::Rgb,
                ..SystemParams::paper_default(n, m, k)
            }
            .with_rois(j, sum, union);
            writeln!(
                csv,
                "{n},{m},{k},{},{},{},{}",
                params.conventional().total_transfer_bits(),
                params.hirise_stage1().transfer_bits_s2p,
                params.hirise_stage2().transfer_bits_s2p,
                params.hirise_total().total_transfer_bits()
            )
            .unwrap();
        }
    }
    check_golden("fig7.csv", &csv);
}

/// One image-sum checksum: a cheap, deterministic pin on the exact pixel
/// stream (any single-code change moves it by ≥ 1/255, far above the
/// 1e-9 relative golden tolerance).
fn plane_checksum(planes: &[&hirise_imaging::Plane]) -> f64 {
    planes.iter().flat_map(|p| p.as_slice()).map(|&v| v as f64).sum()
}

#[test]
fn pipeline_noise_mode_outputs_match_goldens() {
    // Pins the *noisy* frame path per noise mode: `sequential` guards
    // the legacy bit stream (Box–Muller over the ordered generator),
    // `keyed` guards the counter-based Ziggurat stream that is now the
    // default. Counters compare exactly; checksums at 1e-9 relative.
    let mut scene = RgbImage::from_fn(128, 96, |_, _| (0.35, 0.35, 0.35));
    let obj = Rect::new(40, 24, 24, 48);
    draw::fill_rect_rgb(&mut scene, obj, (0.9, 0.4, 0.2));
    let [pr, _, _] = scene.planes_mut();
    draw::fill_stripes(pr, obj, 2, 0.95, 0.55);

    let mut csv = String::from(
        "mode,s1_conversions,s2_conversions,transfer_bits,rois,pooled_checksum,roi_checksum\n",
    );
    for mode in [NoiseRngMode::Sequential, NoiseRngMode::Keyed] {
        let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        let config = HiriseConfig::builder(128, 96)
            .pooling(2)
            .detector(detector)
            .max_rois(4)
            .noise_rng(mode)
            .build()
            .unwrap();
        let run = HirisePipeline::new(config).run(&scene).unwrap();
        let pooled = plane_checksum(&run.pooled_image.as_rgb().unwrap().planes());
        let rois: f64 = run.roi_images.iter().map(|img| plane_checksum(&img.planes())).sum();
        writeln!(
            csv,
            "{mode},{},{},{},{},{pooled:.9},{rois:.9}",
            run.report.stage1.conversions,
            run.report.stage2.conversions,
            run.report.total_transfer_bits(),
            run.rois.len(),
        )
        .unwrap();
    }
    check_golden("pipeline_modes.csv", &csv);
}

#[test]
fn video_temporal_sequence_matches_golden() {
    // Pins the whole temporal path on a seeded synthetic video: the
    // keyframe/drift policy decisions, the track lifecycle (association,
    // spawn, death), the exact per-frame ROI rectangles, and the readout
    // counters — all integers, compared exactly. Runs under the default
    // keyed noise mode, so the sensor noise stream is pinned too.
    use hirise::temporal::{TrackerState, TrackingPipeline};
    use hirise::{PipelineScratch, TemporalConfig};
    use hirise_scene::{VideoGenerator, VideoSpec};

    let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
    let config = HiriseConfig::builder(160, 120)
        .pooling(2)
        .detector(detector)
        .max_rois(4)
        .roi_margin(2)
        .build()
        .unwrap();
    let temporal =
        TemporalConfig::default().keyframe_interval(3).drift_threshold(0.05).min_track_iou(0.2);
    let tracker = TrackingPipeline::new(config, temporal).unwrap();
    let video = VideoGenerator::new(VideoSpec::surveillance(), 160, 120, 0x90D);
    let mut state = TrackerState::new();
    let mut scratch = PipelineScratch::new();

    let mut csv =
        String::from("frame,kind,tracks,rois,s1_conversions,s2_conversions,transfer_bits,boxes\n");
    for frame in video.frames(9) {
        let r = tracker.run_frame(&frame.image, &mut state, &mut scratch).unwrap();
        let boxes: Vec<String> =
            scratch.rois().iter().map(|b| format!("{} {} {} {}", b.x, b.y, b.w, b.h)).collect();
        writeln!(
            csv,
            "{},{},{},{},{},{},{},{}",
            frame.index,
            r.kind,
            r.active_tracks,
            r.report.roi_count,
            r.report.stage1.conversions,
            r.report.stage2.conversions,
            r.report.total_transfer_bits(),
            boxes.join("|"),
        )
        .unwrap();
    }
    check_golden("video_temporal.csv", &csv);
}

#[test]
fn scenario_fleet_sequences_match_goldens() {
    // One golden CSV per stress scenario, in the exact format of
    // `video_temporal.csv`: each pins the policy decisions, track
    // lifecycle, ROI rectangles, and readout counters of one fleet
    // scenario at a small array under the default keyed noise — so a
    // change to occlusion handling, scale adaptation, defect robustness,
    // or crowd association shows up as a per-scenario diff, not just a
    // shifted aggregate.
    use hirise::temporal::{TrackerState, TrackingPipeline};
    use hirise::{PipelineScratch, TemporalConfig};
    use hirise_scene::{ScenarioGenerator, ScenarioSpec};

    for spec in ScenarioSpec::fleet() {
        let name = spec.name;
        let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        let config = HiriseConfig::builder(160, 120)
            .pooling(2)
            .detector(detector)
            .max_rois(4)
            .roi_margin(2)
            .build()
            .unwrap();
        let temporal =
            TemporalConfig::default().keyframe_interval(3).drift_threshold(0.05).min_track_iou(0.2);
        let tracker = TrackingPipeline::new(config, temporal).unwrap();
        let scenario = ScenarioGenerator::new(spec, 160, 120, 0x5CE2);
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();

        let mut csv = String::from(
            "frame,kind,tracks,rois,s1_conversions,s2_conversions,transfer_bits,boxes\n",
        );
        for frame in scenario.frames(8) {
            let r = tracker.run_frame(&frame.image, &mut state, &mut scratch).unwrap();
            let boxes: Vec<String> =
                scratch.rois().iter().map(|b| format!("{} {} {} {}", b.x, b.y, b.w, b.h)).collect();
            writeln!(
                csv,
                "{},{},{},{},{},{},{},{}",
                frame.index,
                r.kind,
                r.active_tracks,
                r.report.roi_count,
                r.report.stage1.conversions,
                r.report.stage2.conversions,
                r.report.total_transfer_bits(),
                boxes.join("|"),
            )
            .unwrap();
        }
        check_golden(&format!("scenario_{name}.csv"), &csv);
    }
}

#[test]
fn goldens_sanity_paper_shape() {
    // Independent of the committed files: the golden computations must
    // keep the paper's qualitative shape, so a wrong regeneration cannot
    // silently bless nonsense.
    let model = AnalyticalModel::new(&HiriseConfig::paper_reference(), &table1_rois());
    assert!(model.satisfies_paper_conditions());
    assert!(model.transfer_reduction() > 2.0);
    let stats = DatasetRoiStats::measure(
        &DatasetSpec::crowdhuman_like(),
        Some(ObjectClass::Person),
        8,
        0xF167,
    );
    assert!(stats.union_area_frac < stats.sum_area_frac);
    assert!((1..=40).contains(&stats.boxes));
}
