//! Cross-crate integration tests: the full two-stage pipeline against the
//! analytical model, the baselines, and the scene ground truth.

use hirise::analytical::AnalyticalModel;
use hirise::baseline::{ConventionalPipeline, InProcessorPipeline};
use hirise::{ColorMode, Detector, HiriseConfig, HirisePipeline, SensorConfig};
use hirise_imaging::metrics;
use hirise_scene::{DatasetSpec, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn crowd_scene(w: u32, h: u32, seed: u64) -> hirise_scene::Scene {
    let generator = SceneGenerator::new(DatasetSpec::crowdhuman_like());
    let mut rng = StdRng::seed_from_u64(seed);
    generator.generate(w, h, &mut rng)
}

#[test]
fn pipeline_counts_match_analytical_model() {
    let scene = crowd_scene(256, 192, 3);
    let config = HiriseConfig::builder(256, 192)
        .pooling(4)
        .sensor(SensorConfig::noiseless())
        .max_rois(6)
        .build()
        .unwrap();
    let pipeline = HirisePipeline::new(config.clone());
    let run = pipeline.run(&scene.image).unwrap();

    let model = AnalyticalModel::new(&config, &run.rois);
    // Stage-1 conversions follow the closed form exactly.
    assert_eq!(run.report.stage1.conversions, model.stage1().conversions);
    // Stage-2 transfer follows the sum-of-areas form; conversions follow
    // the union form.
    assert_eq!(run.report.stage2.transferred_bits, model.stage2().transfer_bits_s2p);
    assert_eq!(run.report.stage2.conversions, model.stage2().conversions);
    // Box-coordinate backchannel: j * 4 words * 16 bits.
    assert_eq!(run.report.stage2.box_words_bits, run.rois.len() as u64 * 64);
}

#[test]
fn hirise_beats_conventional_on_every_cost() {
    let scene = crowd_scene(256, 192, 4);
    let config = HiriseConfig::builder(256, 192).pooling(8).max_rois(8).build().unwrap();
    let pipeline = HirisePipeline::new(config);
    let run = pipeline.run(&scene.image).unwrap();

    let baseline = ConventionalPipeline::new(SensorConfig::default());
    let (_, base) = baseline.run(&scene.image);

    assert!(run.report.conversions() < base.conversions());
    assert!(run.report.total_transfer_bits() < base.total_transfer_bits());
    assert!(run.report.peak_image_bytes() < base.peak_image_bytes());
    assert!(run.report.sensor_energy_mj_default() < base.sensor_energy_mj_default());
}

#[test]
fn in_sensor_and_in_processor_images_agree_with_real_noise() {
    // Table-2 premise at the image level, with the full (non-ideal) noise
    // model: the two stage-1 images agree to a few millivolt-equivalents.
    let scene = crowd_scene(256, 192, 5);
    let config = HiriseConfig::builder(256, 192).pooling(4).build().unwrap();
    let pipeline = HirisePipeline::new(config);
    let (in_sensor, _, _) = pipeline.run_stage1(&scene.image).unwrap();

    let in_proc_pipeline =
        InProcessorPipeline::new(SensorConfig::default(), 4, ColorMode::Rgb, Detector::default());
    let (in_proc, _) = in_proc_pipeline.scaled_capture(&scene.image).unwrap();

    let a = in_sensor.as_rgb().unwrap();
    let b = in_proc.as_rgb().unwrap();
    for ch in 0..3 {
        let mae = metrics::mae(a.planes()[ch], b.planes()[ch]).unwrap();
        assert!(mae < 0.01, "channel {ch} MAE {mae} too large for detection parity");
    }
}

#[test]
fn gray_mode_reduces_stage1_costs_threefold() {
    let scene = crowd_scene(256, 192, 6);
    let mut configs = Vec::new();
    for mode in [ColorMode::Rgb, ColorMode::Gray] {
        let config = HiriseConfig::builder(256, 192).pooling(4).stage1_color(mode).build().unwrap();
        let pipeline = HirisePipeline::new(config);
        let (_, _, stats) = pipeline.run_stage1(&scene.image).unwrap();
        configs.push(stats);
    }
    assert_eq!(configs[0].conversions, 3 * configs[1].conversions);
    assert_eq!(configs[0].transferred_bits, 3 * configs[1].transferred_bits);
}

#[test]
fn rois_land_on_annotated_objects() {
    // The stage-1 detector must route ROIs to real scene objects.
    let scene = crowd_scene(512, 384, 7);
    let config = HiriseConfig::builder(512, 384).pooling(2).max_rois(20).build().unwrap();
    let pipeline = HirisePipeline::new(config);
    let run = pipeline.run(&scene.image).unwrap();
    assert!(!run.rois.is_empty(), "no ROIs were requested");
    let hits = run
        .rois
        .iter()
        .filter(|roi| {
            scene
                .objects
                .iter()
                .any(|o| roi.intersection_area(&o.bbox) as f64 >= 0.3 * o.bbox.area() as f64)
        })
        .count();
    assert!(
        hits * 2 >= run.rois.len(),
        "only {hits}/{} ROIs overlap annotated objects",
        run.rois.len()
    );
}

#[test]
fn scratch_reports_bit_identical_to_allocating_runs() {
    // Acceptance criterion of the zero-allocation frame path: for the
    // same (config, scene), `run_with_scratch` must produce a RunReport
    // bit-identical to `run`, across colour modes, noise models and
    // scenes — with one scratch reused for all of it.
    use hirise::PipelineScratch;

    let mut scratch = PipelineScratch::new();
    for (mode, sensor_cfg) in [
        (ColorMode::Rgb, SensorConfig::default()),
        (ColorMode::Gray, SensorConfig::default()),
        (ColorMode::Rgb, SensorConfig::noiseless()),
    ] {
        let config = HiriseConfig::builder(256, 192)
            .pooling(4)
            .stage1_color(mode)
            .sensor(sensor_cfg)
            .max_rois(6)
            .build()
            .unwrap();
        let pipeline = HirisePipeline::new(config);
        for seed in [21, 22, 23] {
            let scene = crowd_scene(256, 192, seed);
            let scratch_report = pipeline.run_with_scratch(&scene.image, &mut scratch).unwrap();
            let run = pipeline.run(&scene.image).unwrap();
            assert_eq!(scratch_report, run.report, "mode {mode} seed {seed}");
            // The retained frame artefacts agree too (stronger than the
            // report check: every pixel of every intermediate).
            assert_eq!(*scratch.pooled_image(), run.pooled_image);
            assert_eq!(scratch.detections(), run.detections.as_slice());
            assert_eq!(scratch.rois(), run.rois.as_slice());
            assert_eq!(scratch.roi_images(), run.roi_images.as_slice());
        }
    }
}

#[test]
fn deeper_pooling_cuts_stage1_energy_quadratically() {
    let scene = crowd_scene(256, 192, 8);
    let mut last = u64::MAX;
    for k in [2u32, 4, 8] {
        let config = HiriseConfig::builder(256, 192).pooling(k).build().unwrap();
        let pipeline = HirisePipeline::new(config);
        let (_, _, stats) = pipeline.run_stage1(&scene.image).unwrap();
        assert_eq!(stats.conversions, (256 / k * 192 / k * 3) as u64);
        assert!(stats.conversions < last);
        last = stats.conversions;
    }
}
