//! Property-based tests (proptest) on the core data structures and
//! invariants the system accounting relies on.

use hirise_imaging::rect::{sum_area, union_area};
use hirise_imaging::{ops, Plane, Rect};
use hirise_nn::planner::{
    liveness_lower_bound, naive_peak, plan_greedy, plan_is_valid, TensorInfo,
};
use hirise_sensor::Adc;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..200, 0u32..200, 1u32..100, 1u32..100).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn intersection_never_exceeds_either_area(a in arb_rect(), b in arb_rect()) {
        let inter = a.intersection_area(&b);
        prop_assert!(inter <= a.area());
        prop_assert!(inter <= b.area());
    }

    #[test]
    fn union_bounded_by_sum_and_max(rects in prop::collection::vec(arb_rect(), 0..8)) {
        let u = union_area(&rects);
        let s = sum_area(&rects);
        prop_assert!(u <= s, "union {u} > sum {s}");
        let max_single = rects.iter().map(Rect::area).max().unwrap_or(0);
        prop_assert!(u >= max_single);
    }

    // NOTE: the compat `proptest` stand-in does not shrink — a failure
    // here panics with the raw sampled rectangle set rather than a
    // minimised counterexample (see crates/compat/README.md).
    #[test]
    fn union_area_matches_raster_fill(rects in prop::collection::vec(arb_rect(), 0..10)) {
        // arb_rect() coordinates stay below 200 + 100, so a 300x300 grid
        // covers every sampled rectangle.
        const GRID: usize = 300;
        let mut filled = vec![false; GRID * GRID];
        for r in &rects {
            for y in r.y..r.bottom() {
                for x in r.x..r.right() {
                    filled[y as usize * GRID + x as usize] = true;
                }
            }
        }
        let brute = filled.iter().filter(|&&covered| covered).count() as u64;
        prop_assert_eq!(union_area(&rects), brute);
        // The scratch-reusing sweep must agree with the allocating one.
        let mut scratch = hirise_imaging::rect::UnionScratch::new();
        prop_assert_eq!(
            hirise_imaging::rect::union_area_with_scratch(&rects, &mut scratch),
            brute
        );
    }

    #[test]
    fn rect_scaling_up_then_down_roundtrips(r in arb_rect(), k in 1u32..9) {
        let back = r.scaled(k, 1).scaled(1, k);
        prop_assert_eq!(back, r);
    }

    #[test]
    fn inflated_is_safe_and_monotone_for_extreme_rects(
        x in prop::sample::select(vec![0u32, 1, 1000, u32::MAX / 2, u32::MAX - 1, u32::MAX]),
        y in prop::sample::select(vec![0u32, 7, u32::MAX / 3, u32::MAX]),
        w in prop::sample::select(vec![0u32, 1, 300, u32::MAX / 2, u32::MAX]),
        h in prop::sample::select(vec![0u32, 2, u32::MAX - 5, u32::MAX]),
        margin in prop::sample::select(vec![0u32, 1, 4, 1 << 20, u32::MAX / 2, u32::MAX]),
        k in 1u32..9,
    ) {
        // Saturating inflation must never wrap (the old `w + (x - x0) +
        // margin` overflowed in release for coordinates near u32::MAX):
        // the result contains the original, degeneracy is preserved in
        // both directions, and the scaled→inflated→clamped composition
        // the ROI mapper runs stays inside the array.
        let r = Rect::new(x, y, w, h);
        let inflated = r.inflated(margin);
        prop_assert_eq!(inflated.is_degenerate(), r.is_degenerate());
        if !r.is_degenerate() {
            prop_assert!(inflated.x <= r.x && inflated.y <= r.y);
            prop_assert!(inflated.w >= r.w && inflated.h >= r.h);
        }
        let mapped = r.scaled(k, 1).inflated(margin).clamped(640, 480);
        prop_assert!(mapped.fits_within(640, 480));
        prop_assert_eq!(r.scaled(k, 1).is_degenerate(), r.is_degenerate());
    }

    #[test]
    fn clamped_rect_always_fits(r in arb_rect(), w in 1u32..300, h in 1u32..300) {
        let c = r.clamped(w, h);
        prop_assert!(c.fits_within(w, h));
    }

    #[test]
    fn avg_pool_preserves_global_mean(
        seed in 0u64..1000,
        k in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let p = Plane::from_fn(16, 16, |_, _| next());
        let pooled = ops::avg_pool(&p, k).unwrap();
        prop_assert!((pooled.mean() - p.mean()).abs() < 1e-4);
    }

    #[test]
    fn adc_is_monotone(bits in 4u32..12, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let adc = Adc::new(bits, 0.0, 1.0).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.convert_ideal(lo) <= adc.convert_ideal(hi));
    }

    #[test]
    fn adc_roundtrip_within_one_lsb(v in 0.0f64..1.0) {
        let adc = Adc::new(8, 0.0, 1.0).unwrap();
        let code = adc.convert_ideal(v);
        prop_assert!((adc.code_to_volts(code) - v).abs() <= adc.lsb());
    }

    #[test]
    fn planner_is_valid_and_bounded(
        specs in prop::collection::vec((1u64..500, 0usize..6, 0usize..6), 1..12)
    ) {
        let tensors: Vec<TensorInfo> = specs
            .iter()
            .enumerate()
            .map(|(id, &(size, a, b))| TensorInfo {
                id,
                size_bytes: size,
                first_use: a.min(b),
                last_use: a.max(b),
            })
            .collect();
        let plan = plan_greedy(&tensors);
        prop_assert!(plan_is_valid(&tensors, &plan));
        prop_assert!(plan.peak_bytes >= liveness_lower_bound(&tensors));
        prop_assert!(plan.peak_bytes <= naive_peak(&tensors));
    }

    #[test]
    fn crop_dimensions_match_rect(r in arb_rect()) {
        let p = Plane::filled(400, 400, 0.5);
        if r.fits_within(400, 400) {
            let c = p.crop(r).unwrap();
            prop_assert_eq!(c.dimensions(), (r.w, r.h));
        }
    }
}

// ---- Scenario-fleet generator invariants ----------------------------
//
// The stress scenarios (hirise_scene::scenario) are benchmark *and*
// golden inputs, so their generator contract is held property-style:
// frames are pure functions of (spec, seed, index), ground truth never
// leaves the canvas, perturbations stay within their declared envelopes,
// and the crowd preset spawns exactly what it promises.

use hirise_scene::{Illumination, ScenarioGenerator, ScenarioSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scenario_frames_are_pure_functions_of_their_index(
        fleet_idx in 0usize..7,
        seed in 0u64..1000,
        frame in 0u32..24,
    ) {
        let fleet = ScenarioSpec::fleet();
        let spec = &fleet[fleet_idx % fleet.len()];
        let a = ScenarioGenerator::new(spec.clone(), 96, 72, seed).frame(frame);
        let b = ScenarioGenerator::new(spec.clone(), 96, 72, seed).frame(frame);
        for (pa, pb) in a.image.planes().iter().zip(b.image.planes().iter()) {
            prop_assert_eq!(pa.as_slice(), pb.as_slice(), "{}: frame {frame} not pure", spec.name);
        }
        prop_assert_eq!(a.objects.len(), b.objects.len());
        for (oa, ob) in a.objects.iter().zip(&b.objects) {
            prop_assert_eq!(oa.bbox, ob.bbox);
        }
    }

    #[test]
    fn scenario_ground_truth_stays_in_canvas(
        fleet_idx in 0usize..7,
        seed in 0u64..1000,
        frame in 0u32..48,
    ) {
        let fleet = ScenarioSpec::fleet();
        let spec = &fleet[fleet_idx % fleet.len()];
        let generator = ScenarioGenerator::new(spec.clone(), 160, 120, seed);
        for object in generator.ground_truth(frame) {
            prop_assert!(
                object.bbox.fits_within(160, 120),
                "{}: frame {frame} box {:?} leaves the 160x120 canvas",
                spec.name,
                object.bbox
            );
            prop_assert!(!object.bbox.is_degenerate());
        }
    }

    #[test]
    fn illumination_factor_stays_within_its_declared_bounds(
        drift in -0.02f64..0.02,
        amplitude in 0.0f64..0.3,
        period in 2.0f64..16.0,
        last in 1u32..64,
    ) {
        let illumination =
            Illumination { drift_per_frame: drift, flicker_amplitude: amplitude, flicker_period: period };
        let (lo, hi) = illumination.factor_bounds(last);
        prop_assert!(lo >= 0.0 && lo <= hi);
        for frame in 0..=last {
            let f = illumination.factor(frame);
            prop_assert!(
                (lo..=hi).contains(&f),
                "factor {f} at frame {frame} outside declared [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn perturbed_scenario_pixels_stay_in_unit_interval(
        scenario in prop::sample::select(vec!["illumination", "defects"]),
        seed in 0u64..200,
        frame in 0u32..24,
    ) {
        let spec = ScenarioSpec::by_name(scenario).expect("fleet preset exists");
        let image = ScenarioGenerator::new(spec, 96, 72, seed).frame(frame).image;
        for plane in image.planes() {
            for &v in plane.as_slice() {
                prop_assert!((0.0..=1.0).contains(&v), "{scenario}: pixel {v} escaped [0, 1]");
            }
        }
    }

    #[test]
    fn crowded_scenario_spawns_exactly_its_promised_count(seed in 0u64..500) {
        let spec = ScenarioSpec::crowded();
        let promised = spec.tracks.len() + spec.crowd;
        let generator = ScenarioGenerator::new(spec, 160, 120, seed);
        prop_assert_eq!(generator.track_count(), promised);
        prop_assert_eq!(generator.ground_truth(0).len(), promised);
    }
}

// ---- Fault-layer drift interaction ----------------------------------
//
// The chaos layer's sensor faults must stay *visible* to the temporal
// policy: a stuck-bright row band (hirise_fault's persistent silicon
// defect) that lands across a tracked ROI shifts the crop's mean away
// from its drift reference, so the tracker must re-detect rather than
// keep reporting a clean tracked frame over corrupted rows.

use hirise::{
    FrameKind, HiriseConfig, PipelineScratch, SensorConfig, TemporalConfig, TrackerState,
    TrackingPipeline,
};
use hirise_fault::pin_rows;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stuck_bright_rows_over_a_tracked_roi_count_as_drifted(
        seed in 0u64..400,
        level in 0.85f32..1.0,
    ) {
        const SW: u32 = 96;
        const SH: u32 = 72;
        let threshold = 0.08f32;
        let spec = ScenarioSpec::by_name("defects").expect("fleet preset exists");
        let scene = ScenarioGenerator::new(spec, SW, SH, seed).frame(0).image;
        let detector = hirise::DetectorConfig { score_threshold: 0.2, ..Default::default() };
        let config = HiriseConfig::builder(SW, SH)
            .pooling(2)
            .sensor(SensorConfig::noiseless())
            .detector(detector)
            .max_rois(4)
            .roi_margin(4)
            .build()
            .unwrap();
        let tracker = TrackingPipeline::new(
            config,
            TemporalConfig::default().keyframe_interval(8).drift_threshold(threshold),
        )
        .unwrap();
        let mut state = TrackerState::new();
        let mut scratch = PipelineScratch::new();
        // A keyframe establishes tracks; the static repeat must track
        // clean before the fault can be blamed for the refresh.
        tracker.run_frame(&scene, &mut state, &mut scratch).unwrap();
        let clean = tracker.run_frame(&scene, &mut state, &mut scratch).unwrap();
        if !state.tracks().is_empty() && clean.kind == FrameKind::Tracked {
            // Pin a stuck-bright band across every tracked ROI, margin
            // included, so each drift crop reads the stuck level — and
            // skip the (rare) cases where a crop's clean mean already
            // sits at the stuck level, where no cue could exist.
            let mut faulty = scene.clone();
            let mut any_gap = false;
            for track in state.tracks() {
                let rect = track.base_rect(SW, SH).inflated(8).clamped(SW, SH);
                let mut sum = 0.0f64;
                for plane in scene.planes() {
                    for y in rect.y..rect.bottom() {
                        let row = plane.row(y);
                        for x in rect.x..rect.right() {
                            sum += f64::from(row[x as usize]);
                        }
                    }
                }
                let mean = sum / (3.0 * rect.area() as f64);
                if (mean - f64::from(level)).abs() > 2.0 * f64::from(threshold) {
                    any_gap = true;
                }
                pin_rows(&mut faulty, rect.y, rect.h, level);
            }
            if any_gap {
                let before = state.drift_refreshes();
                let report = tracker.run_frame(&faulty, &mut state, &mut scratch).unwrap();
                prop_assert!(
                    report.kind == FrameKind::DriftRefresh,
                    "stuck-bright rows over a tracked ROI must count as drifted, got {:?}",
                    report.kind
                );
                prop_assert_eq!(state.drift_refreshes(), before + 1);
            }
        }
    }
}
